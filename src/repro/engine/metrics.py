"""Lightweight counters and timers for the batch engine.

A :class:`MetricsRegistry` is a named bag of monotonically increasing
:class:`Counter`\\ s, up/down :class:`Gauge`\\ s (current in-flight depth of
the scheduler), accumulating :class:`Timer`\\ s, and bounded-bucket
:class:`Histogram`\\ s (span durations, chase round sizes).  It is
deliberately minimal — enough to report cache hit rates and per-procedure
latency from ``BatchEngine.stats()`` and the CLI without pulling in a
metrics library — and thread-safe, since the pool coordinator and callers
may touch it concurrently.

Two registry-wide conventions keep long-lived references safe:

* :meth:`MetricsRegistry.reset` **zeroes metrics in place** rather than
  clearing the name→object maps.  Call sites cache metric objects (the
  kernel holds its counters across thousands of searches); dropping the
  objects on reset would leave those references updating detached orphans
  that later snapshots never see.
* :meth:`MetricsRegistry.snapshot` **omits identically-zero metrics**, so
  a freshly reset registry snapshots as ``{}`` and idle metrics do not
  clutter reports.
"""

from __future__ import annotations

import re
import time
from bisect import bisect_left
from contextlib import contextmanager
from threading import RLock
from typing import Dict, Iterator, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: RLock) -> None:
        self.name = name
        self._value = 0
        self._lock = lock

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    def _zero(self) -> None:
        self._value = 0


class Gauge:
    """A value that goes up and down, remembering its high-water mark."""

    __slots__ = ("name", "_value", "_max", "_lock")

    def __init__(self, name: str, lock: RLock) -> None:
        self.name = name
        self._value = 0
        self._max = 0
        self._lock = lock

    def add(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount
            self._max = max(self._max, self._value)

    def sub(self, amount: int = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value

    @property
    def high_water(self) -> int:
        with self._lock:
            return self._max

    def _zero(self) -> None:
        self._value = 0
        self._max = 0


class Timer:
    """An accumulating timer: total seconds and number of observations."""

    __slots__ = ("name", "_total", "_count", "_max", "_lock")

    def __init__(self, name: str, lock: RLock) -> None:
        self.name = name
        self._total = 0.0
        self._count = 0
        self._max = 0.0
        self._lock = lock

    def observe(self, seconds: float) -> None:
        with self._lock:
            self._total += seconds
            self._count += 1
            self._max = max(self._max, seconds)

    @contextmanager
    def time(self) -> Iterator[None]:
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(time.perf_counter() - start)

    @property
    def total(self) -> float:
        with self._lock:
            return self._total

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def mean(self) -> float:
        with self._lock:
            return self._total / self._count if self._count else 0.0

    def _zero(self) -> None:
        self._total = 0.0
        self._count = 0
        self._max = 0.0


#: Default histogram buckets (seconds): micro-phases up to long decisions.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.001, 0.005, 0.02, 0.1, 0.5, 2.0, 10.0,
)

#: Request/job latency buckets (seconds) shared by the scheduler's
#: per-kind ``engine.job.seconds.*`` and the serve tier's per-tenant
#: ``serve.latency.*`` histograms — tighter low end than the span-duration
#: defaults because served latencies cluster under the deadline floor.
LATENCY_BUCKETS: Tuple[float, ...] = (
    0.001, 0.005, 0.02, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0,
)


class Histogram:
    """A bounded-bucket histogram: counts per upper bound plus sum/max.

    *buckets* are ascending upper bounds; an implicit ``+inf`` bucket
    catches the tail, so memory is fixed regardless of how many values are
    observed — safe for hot paths like span durations and chase round
    sizes.

    Each bucket can additionally hold one **exemplar** — an opaque
    reference (the serving tier passes decision ids) attached to the most
    recent observation that landed in the bucket.  A slow bucket then
    links straight back to a concrete span tree instead of being an
    anonymous count.
    """

    __slots__ = (
        "name", "buckets", "_counts", "_sum", "_count", "_max", "_lock",
        "_exemplars",
    )

    def __init__(
        self,
        name: str,
        lock: RLock,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        bounds = tuple(buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"buckets must be ascending, got {bounds!r}")
        self.name = name
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._sum = 0.0
        self._count = 0
        self._max = 0.0
        self._lock = lock
        self._exemplars: Dict[int, Tuple[str, float]] = {}

    def observe(self, value: float, exemplar: Optional[str] = None) -> None:
        # bisect_left makes the bounds inclusive, as the ``le_`` labels say.
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value > self._max:
                self._max = value
            if exemplar is not None:
                self._exemplars[index] = (exemplar, value)

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def snapshot(self) -> Dict[str, object]:
        with self._lock:
            out: Dict[str, object] = {
                "count": self._count,
                "sum": self._sum,
                "mean": self._sum / self._count if self._count else 0.0,
                "max": self._max,
            }
            labels = [f"le_{b:g}" for b in self.buckets] + ["inf"]
            out["buckets"] = dict(zip(labels, self._counts))
            if self._exemplars:
                out["exemplars"] = {
                    labels[i]: {"ref": ref, "value": value}
                    for i, (ref, value) in sorted(self._exemplars.items())
                }
            return out

    def _zero(self) -> None:
        self._counts = [0] * len(self._counts)
        self._sum = 0.0
        self._count = 0
        self._max = 0.0
        self._exemplars = {}


def histogram_quantiles(
    snapshot: Dict[str, object], qs: Sequence[float] = (0.5, 0.95, 0.99)
) -> Dict[float, float]:
    """Quantile estimates from a :meth:`Histogram.snapshot` dict.

    Standard cumulative-bucket linear interpolation (what Prometheus's
    ``histogram_quantile`` does): find the bucket the target rank falls
    in, interpolate between its lower and upper bound.  The first bucket
    interpolates from 0 and the overflow bucket is clamped to the
    recorded ``max``, so estimates never exceed an observed value.
    Returns ``{q: estimate}``; an empty histogram estimates 0.0.
    """
    buckets: Dict[str, int] = snapshot.get("buckets", {})  # type: ignore
    count = int(snapshot.get("count", 0) or 0)
    out: Dict[float, float] = {}
    if not count or not buckets:
        return {q: 0.0 for q in qs}
    bounds: list = []
    for label in buckets:
        bounds.append(
            float("inf") if label == "inf" else float(label[len("le_"):])
        )
    counts = list(buckets.values())
    hist_max = float(snapshot.get("max", 0.0) or 0.0)
    for q in qs:
        rank = q * count
        cumulative = 0
        estimate = hist_max
        lower = 0.0
        for bound, in_bucket in zip(bounds, counts):
            upper = min(bound, hist_max) if bound != float("inf") else hist_max
            if cumulative + in_bucket >= rank and in_bucket:
                fraction = (rank - cumulative) / in_bucket
                estimate = lower + (upper - lower) * max(0.0, fraction)
                break
            cumulative += in_bucket
            lower = upper
        out[q] = min(estimate, hist_max)
    return out


_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    out = _PROM_NAME.sub("_", f"{prefix}_{name}" if prefix else name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def render_prometheus(snapshot: Dict[str, object], prefix: str = "repro") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` in Prometheus text format.

    The snapshot's value shapes identify the metric families: plain ints
    are counters, ``{value, high_water}`` dicts are gauges (the high-water
    mark becomes a sibling gauge), timers become ``summary`` sum/count
    pairs in seconds, and bounded-bucket histograms render with cumulative
    ``le`` buckets ending at ``+Inf``.  Dots and other illegal characters
    in metric names become underscores (``engine.dedup.coalesced`` →
    ``repro_engine_dedup_coalesced``).
    """
    lines: list = []
    for name in sorted(snapshot):
        value = snapshot[name]
        metric = _prom_name(name, prefix)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {value}")
            continue
        if not isinstance(value, dict):
            continue
        if set(value) >= {"value", "high_water"}:
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {value['value']}")
            lines.append(f"# TYPE {metric}_high_water gauge")
            lines.append(f"{metric}_high_water {value['high_water']}")
        elif set(value) >= {"total_s", "count"}:
            lines.append(f"# TYPE {metric}_seconds summary")
            lines.append(f"{metric}_seconds_sum {value['total_s']}")
            lines.append(f"{metric}_seconds_count {value['count']}")
        elif "buckets" in value:
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for label, count in value["buckets"].items():
                cumulative += count
                le = "+Inf" if label == "inf" else label[len("le_"):]
                lines.append(f'{metric}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{metric}_sum {value['sum']}")
            lines.append(f"{metric}_count {value['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


class MetricsRegistry:
    """A named collection of counters, gauges, timers, and histograms."""

    def __init__(self) -> None:
        self._lock = RLock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timers: Dict[str, Timer] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            if name not in self._counters:
                self._counters[name] = Counter(name, self._lock)
            return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            if name not in self._gauges:
                self._gauges[name] = Gauge(name, self._lock)
            return self._gauges[name]

    def timer(self, name: str) -> Timer:
        with self._lock:
            if name not in self._timers:
                self._timers[name] = Timer(name, self._lock)
            return self._timers[name]

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get-or-create a histogram; *buckets* only applies on creation."""
        with self._lock:
            if name not in self._histograms:
                self._histograms[name] = Histogram(
                    name, self._lock, buckets or DEFAULT_BUCKETS
                )
            return self._histograms[name]

    def snapshot(self) -> Dict[str, object]:
        """A plain-dict view of every *touched* metric (stable key order).

        Identically-zero metrics (never used, or zeroed by :meth:`reset`)
        are omitted, so a fresh or freshly reset registry snapshots as an
        empty dict.
        """
        with self._lock:
            out: Dict[str, object] = {}
            for name in sorted(self._counters):
                value = self._counters[name].value
                if value:
                    out[name] = value
            for name in sorted(self._gauges):
                g = self._gauges[name]
                if g.value or g.high_water:
                    out[name] = {"value": g.value, "high_water": g.high_water}
            for name in sorted(self._timers):
                t = self._timers[name]
                if t.count or t.total:
                    out[name] = {
                        "total_s": t.total,
                        "count": t.count,
                        "mean_s": t.mean,
                    }
            for name in sorted(self._histograms):
                h = self._histograms[name]
                if h.count:
                    out[name] = h.snapshot()
            return out

    def reset(self) -> None:
        """Zero every metric **in place**.

        The name→object maps are preserved on purpose: call sites cache
        metric objects across calls, and clearing the maps would orphan
        those references — they would keep accumulating into objects no
        snapshot ever reads (the bug ``repro.clear_caches()`` used to
        trigger on the kernel counters).
        """
        with self._lock:
            for counter in self._counters.values():
                counter._zero()
            for gauge in self._gauges.values():
                gauge._zero()
            for timer in self._timers.values():
                timer._zero()
            for histogram in self._histograms.values():
                histogram._zero()
