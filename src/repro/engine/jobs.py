"""Job types the batch engine schedules.

A job is a frozen, picklable dataclass with three responsibilities:

* ``run()`` — execute the underlying library procedure (in a worker
  process or inline);
* ``cache_key()`` — the canonical-content cache key, or ``None`` for
  uncacheable jobs; keys fold in every parameter that can change the
  answer, and containment keys are *ordered* (``Q1 ⊆ Q2`` and
  ``Q2 ⊆ Q1`` are different questions).  The key is *stable* — computed
  once per job instance and memoized — because the scheduler consults it
  repeatedly (cache lookup, in-flight dedup, store) and the canonical
  labeling behind it is not free;
* ``failure_result(reason)`` — the result reported when the worker
  running the job times out, crashes, or raises.  Containment jobs
  degrade to an honest UNKNOWN verdict carrying the reason; rewriting
  and classification jobs have no UNKNOWN value and report ``None``
  (the error is preserved on the ``JobResult``).

``SleepJob`` and ``CrashJob`` exist for tests and benchmarks that need a
task with a known duration or a worker that dies mid-task.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, FrozenSet, Optional, Tuple

from ..core.omq import OMQ, TGDClass
from ..core.tgd import TGD
from .canon import hash_omq, hash_tgds


@dataclass(frozen=True)
class ClassificationOutcome:
    """The fragment classes of a tgd set plus the preferred one."""

    classes: FrozenSet[TGDClass]
    best: TGDClass


@dataclass(frozen=True)
class ContainmentJob:
    """Decide ``Q1 ⊆ Q2`` via :func:`repro.containment.contains`."""

    q1: OMQ
    q2: OMQ
    rewriting_budget: Optional[int] = None
    chase_max_steps: int = 200_000
    chase_max_depth: Optional[int] = None

    kind = "containment"

    @cached_property
    def _hashes(self) -> Tuple[str, str]:
        # cached_property writes through the instance __dict__, which is
        # legal on a frozen dataclass and keeps equality field-based.
        return hash_omq(self.q1), hash_omq(self.q2)

    @cached_property
    def _key(self) -> str:
        h1, h2 = self._hashes
        return (
            f"cont:{h1}:{h2}"
            f":b={self.rewriting_budget}:s={self.chase_max_steps}"
            f":d={self.chase_max_depth}"
        )

    def cache_key(self) -> str:
        return self._key

    def content_hashes(self) -> Tuple[str, str]:
        """The canonical hashes of (q1, q2) — the catalog's vocabulary."""
        return self._hashes

    def catalog_key(self, rep) -> str:
        """The cache key with both hashes replaced by their catalog group
        representatives (*rep* maps hash -> representative hash).

        Sound for containment only: the verdict depends on the OMQs'
        semantics, so any proven-equivalent member of a group yields the
        same answer.  Rewriting/classification keys must NOT be rewritten
        this way — their outputs depend on rule syntax.
        """
        h1, h2 = self._hashes
        return (
            f"cont:{rep(h1)}:{rep(h2)}"
            f":b={self.rewriting_budget}:s={self.chase_max_steps}"
            f":d={self.chase_max_depth}"
        )

    def trace_attrs(self) -> dict:
        """Attributes stamped on the root job span of a traced run."""
        return {
            "cache_key": self._key,
            "lhs_rules": len(self.q1.sigma),
            "rhs_rules": len(self.q2.sigma),
        }

    def run(self) -> Any:
        from ..containment.dispatch import contains

        return contains(
            self.q1,
            self.q2,
            rewriting_budget=self.rewriting_budget,
            chase_max_steps=self.chase_max_steps,
            chase_max_depth=self.chase_max_depth,
        )

    def failure_result(self, reason: str) -> Any:
        from ..containment.result import unknown

        return unknown("engine-pool", reason)


@dataclass(frozen=True)
class RewriteJob:
    """UCQ-rewrite an OMQ; budget exhaustion yields a partial result."""

    omq: OMQ
    budget: int = 20_000

    kind = "rewrite"

    @cached_property
    def _key(self) -> str:
        return f"rw:{hash_omq(self.omq)}:b={self.budget}"

    def cache_key(self) -> str:
        return self._key

    def trace_attrs(self) -> dict:
        return {"cache_key": self._key, "budget": self.budget}

    def run(self) -> Any:
        from ..rewriting.xrewrite import RewritingBudgetExceeded, xrewrite

        try:
            return xrewrite(
                self.omq,
                max_queries=self.budget,
                max_total_atoms=20 * self.budget,
            )
        except RewritingBudgetExceeded as exc:
            return exc.partial

    def failure_result(self, reason: str) -> Any:
        return None


@dataclass(frozen=True)
class ClassifyJob:
    """Classify a tgd set into the paper's fragments."""

    sigma: Tuple[TGD, ...]

    kind = "classify"

    @cached_property
    def _key(self) -> str:
        return f"cls:{hash_tgds(self.sigma)}"

    def cache_key(self) -> str:
        return self._key

    def trace_attrs(self) -> dict:
        return {"cache_key": self._key, "rules": len(self.sigma)}

    def run(self) -> ClassificationOutcome:
        from ..fragments.classify import best_class, classify

        return ClassificationOutcome(
            frozenset(classify(self.sigma)), best_class(self.sigma)
        )

    def failure_result(self, reason: str) -> Any:
        return None


@dataclass(frozen=True)
class SleepJob:
    """Sleep then return; a deterministic stand-in for a slow task."""

    seconds: float
    payload: Any = None

    kind = "sleep"

    def cache_key(self) -> Optional[str]:
        return None

    def run(self) -> Any:
        time.sleep(self.seconds)
        return self.payload

    def failure_result(self, reason: str) -> Any:
        return None


@dataclass(frozen=True)
class CrashJob:
    """Kill the hosting worker process abruptly (SIGKILL-style exit)."""

    kind = "crash"

    def cache_key(self) -> Optional[str]:
        return None

    def run(self) -> Any:  # pragma: no cover - exercised in a subprocess
        os._exit(13)

    def failure_result(self, reason: str) -> Any:
        return None


@dataclass
class JobResult:
    """One batch slot: the job, its value, and how it was obtained.

    ``cached`` marks a value served from the result cache; ``coalesced``
    marks one served by deduplication — the job was α-equivalent to
    another submission and rode along on that single computation instead
    of being scheduled itself.  ``trace``, populated when the engine runs
    with tracing enabled, is the serialized decision-span tree captured
    around the job's execution — shipped back from the worker process for
    pooled jobs, so it survives even crash-isolated tasks (cached and
    coalesced results share the original computation's trace or carry
    none).
    """

    job: Any
    value: Any
    cached: bool = False
    error: Optional[str] = None
    duration: float = 0.0
    coalesced: bool = False
    trace: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None
