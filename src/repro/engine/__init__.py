"""``repro.engine`` — the batch containment engine.

A service-shaped layer over the per-call library API:

* :mod:`~repro.engine.canon` — isomorphism-invariant canonical forms and
  content hashes for CQs, tgd sets, and OMQs (the cache-key algebra);
* :mod:`~repro.engine.cache` — a persistent, corruption-tolerant sqlite
  store fronted by an in-memory LRU;
* :mod:`~repro.engine.pool` — a crash-isolated multiprocessing pool with
  per-task timeouts and a deterministic serial fallback;
* :mod:`~repro.engine.engine` — the :class:`BatchEngine` façade tying the
  three together, with a containment-matrix helper;
* :mod:`~repro.engine.metrics` — counters/timers behind ``stats()``;
* :mod:`~repro.engine.registry` — the process-wide clearable-cache
  registry behind ``repro.clear_caches()``.
"""

from .canon import (
    CANON_VERSION,
    CanonicalForm,
    canonical_cq,
    canonical_omq,
    canonical_tgd,
    canonical_tgds,
    canonical_ucq,
    hash_cq,
    hash_omq,
    hash_tgds,
    hash_ucq,
)
from .cache import ResultCache
from .engine import BatchEngine
from .jobs import (
    ClassificationOutcome,
    ClassifyJob,
    ContainmentJob,
    JobResult,
    RewriteJob,
)
from .metrics import MetricsRegistry
from .pool import TaskOutcome, WorkerPool
from .registry import clear_caches, register_cache, registered_caches

__all__ = [
    "BatchEngine",
    "CANON_VERSION",
    "CanonicalForm",
    "ClassificationOutcome",
    "ClassifyJob",
    "ContainmentJob",
    "JobResult",
    "MetricsRegistry",
    "ResultCache",
    "RewriteJob",
    "TaskOutcome",
    "WorkerPool",
    "canonical_cq",
    "canonical_omq",
    "canonical_tgd",
    "canonical_tgds",
    "canonical_ucq",
    "clear_caches",
    "hash_cq",
    "hash_omq",
    "hash_tgds",
    "hash_ucq",
    "register_cache",
    "registered_caches",
]
