"""``repro.engine`` — the batch containment engine.

A service-shaped layer over the per-call library API:

* :mod:`~repro.engine.canon` — isomorphism-invariant canonical forms and
  content hashes for CQs, tgd sets, instances, and OMQs (the cache-key
  algebra);
* :mod:`~repro.engine.cache` — a persistent, corruption-tolerant result
  store fronted by an in-memory LRU, over pluggable byte backends
  (sqlite WAL, sharded directory, memory — :data:`BACKENDS`);
* :mod:`~repro.engine.catalog` — the cross-session catalog of
  proven-equivalent OMQ groups (persistent union-find over canonical
  hashes) that lets later sessions skip recomputation entirely;
* :mod:`~repro.engine.witness_store` — the catalog's negative dual: a
  persistent store of NOT_CONTAINED counterexamples, replayed as single
  hom-checks ahead of the full decision procedures;
* :mod:`~repro.engine.pool` — a crash-isolated multiprocessing pool with
  per-task timeouts and a deterministic serial fallback;
* :mod:`~repro.engine.scheduler` — async submission (:class:`JobHandle`,
  ``as_completed`` streaming) with canonical-key dedup of in-flight
  work, :class:`Priority` classes with starvation-free aging, and
  weighted fair share across submitters;
* :mod:`~repro.engine.engine` — the :class:`BatchEngine` façade tying the
  pieces together, with a containment-matrix helper;
* :mod:`~repro.engine.metrics` — counters/timers behind ``stats()``;
* :mod:`~repro.engine.registry` — the process-wide clearable-cache
  registry behind ``repro.clear_caches()``.

Exports resolve lazily (PEP 562).  This is load-bearing, not cosmetic:
the homomorphism kernel (:mod:`repro.kernel`) sits *below* the core data
model yet reports through :mod:`~repro.engine.metrics` and
:mod:`~repro.engine.registry` — both dependency-free leaf modules.  An
eager ``__init__`` here would pull :mod:`~repro.engine.canon` (which needs
``core.queries``) into the kernel's import chain and close an import
cycle.
"""

from importlib import import_module
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - static analysis only
    from .cache import (
        BACKENDS,
        CacheBackend,
        ResultCache,
        ShardedDirBackend,
        SqliteBackend,
        available_backends,
        register_backend,
    )
    from .catalog import OMQCatalog
    from .canon import (
        CANON_VERSION,
        CanonicalForm,
        canonical_cq,
        canonical_instance,
        canonical_omq,
        canonical_tgd,
        canonical_tgds,
        canonical_ucq,
        hash_cq,
        hash_instance,
        hash_omq,
        hash_tgds,
        hash_ucq,
    )
    from .engine import BatchEngine
    from .jobs import (
        ClassificationOutcome,
        ClassifyJob,
        ContainmentJob,
        JobResult,
        RewriteJob,
    )
    from .metrics import MetricsRegistry, render_prometheus
    from .pool import PoolTicket, TaskOutcome, WorkerPool
    from .registry import clear_caches, register_cache, registered_caches
    from .scheduler import (
        DEADLINE,
        DeadlinePolicy,
        JobHandle,
        Priority,
        Scheduler,
    )
    from .witness_store import WITNESS_SCHEMA_VERSION, WitnessStore

#: export name -> defining submodule (relative to this package)
_EXPORTS = {
    "CANON_VERSION": ".canon",
    "CanonicalForm": ".canon",
    "canonical_cq": ".canon",
    "canonical_instance": ".canon",
    "canonical_omq": ".canon",
    "canonical_tgd": ".canon",
    "canonical_tgds": ".canon",
    "canonical_ucq": ".canon",
    "hash_cq": ".canon",
    "hash_instance": ".canon",
    "hash_omq": ".canon",
    "hash_tgds": ".canon",
    "hash_ucq": ".canon",
    "BACKENDS": ".cache",
    "CacheBackend": ".cache",
    "ResultCache": ".cache",
    "ShardedDirBackend": ".cache",
    "SqliteBackend": ".cache",
    "available_backends": ".cache",
    "register_backend": ".cache",
    "OMQCatalog": ".catalog",
    "BatchEngine": ".engine",
    "ClassificationOutcome": ".jobs",
    "ClassifyJob": ".jobs",
    "ContainmentJob": ".jobs",
    "JobResult": ".jobs",
    "RewriteJob": ".jobs",
    "MetricsRegistry": ".metrics",
    "render_prometheus": ".metrics",
    "PoolTicket": ".pool",
    "TaskOutcome": ".pool",
    "WorkerPool": ".pool",
    "clear_caches": ".registry",
    "register_cache": ".registry",
    "registered_caches": ".registry",
    "DEADLINE": ".scheduler",
    "DeadlinePolicy": ".scheduler",
    "JobHandle": ".scheduler",
    "Priority": ".scheduler",
    "Scheduler": ".scheduler",
    "WITNESS_SCHEMA_VERSION": ".witness_store",
    "WitnessStore": ".witness_store",
}

_SUBMODULES = {
    "cache",
    "canon",
    "catalog",
    "engine",
    "jobs",
    "metrics",
    "pool",
    "registry",
    "scheduler",
    "witness_store",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    target = _EXPORTS.get(name)
    if target is not None:
        value = getattr(import_module(target, __name__), name)
        globals()[name] = value
        return value
    if name in _SUBMODULES:
        return import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__) | _SUBMODULES)
