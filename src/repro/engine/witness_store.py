"""Cross-session index of NOT_CONTAINED counterexamples, replayed cheaply.

The catalog (:mod:`repro.engine.catalog`) compounds *positive* verdicts:
proven-equivalent OMQs short-circuit to CONTAINED.  This module is its
negative dual.  A NOT_CONTAINED verdict is self-certifying — it carries a
witness database ``D`` and a tuple ``c̄`` with ``c̄ ∈ Q1(D) \\ Q2(D)`` —
so persisting ``(hash(Q1), hash(Q2)) → (D, c̄)`` turns every future
re-decision of that pair (and of many structurally different pairs) into
at most two homomorphism-search evaluations instead of a full 2EXPTIME
decision procedure.

Replay ladder for a candidate pair ``(h1, h2)`` (mirrored by the
scheduler's own ordering exact → structural → catalog → cache):

1. **Exact pair** — a stored witness under exactly ``(h1, h2)`` is
   returned with *zero* evaluations.  Canonical hashes are isomorphism
   invariant and NOT_CONTAINED verdicts are only ever produced exactly
   (budget exhaustion yields UNKNOWN, never NOT_CONTAINED), so the stored
   fact ``c̄ ∈ Q1(D)`` and ``c̄ ∉ Q2(D)`` is a semantic fact about this
   very pair — independent of the chase/rewriting budgets either session
   used.
2. **Same LHS** (bounded scan): a witness stored for ``(h1, h2')`` already
   proves ``c̄ ∈ Q1(D)``; only ``c̄ ∉ Q2(D)`` needs checking, and only an
   *exact* negative evaluation counts (inexact evaluation
   under-approximates, mirroring ``small_witness.py``).
3. **Same RHS** (bounded scan): a witness stored for ``(h1', h2)`` already
   proves ``c̄ ∉ Q2(D)``; only membership ``c̄ ∈ Q1(D)`` needs checking,
   which is sound even from an inexact (under-approximating) evaluation.
4. **Structural** (``replay_mode="structural"``, the default): witnesses
   stored under the *same predicate-signature pair* — the set of
   (predicate, arity) pairs each side mentions, see
   :func:`omq_signature` — but under *different* canonical hashes.
   Nothing about the stored pair transfers to the candidate, so **both**
   facts are re-established fresh with the kernel hom-search:

   * ``c̄ ∈ Q1_cand(D)`` — the candidate LHS maps homomorphically into
     the stored witness's certain answers.  Sound even from an inexact
     evaluation (a truncated chase under-approximates the certain
     answers, so membership in the approximation implies membership).
   * ``c̄ ∉ Q2_cand(D)`` — the stored witness still refutes the
     candidate RHS.  Only an *exact* negative evaluation counts.

   Each check runs under ``min(job budget, replay_budget)``; a blown
   budget makes the negative evaluation inexact, which degrades that
   candidate to a miss — structural replay can stall, never lie.

A cross-pair hit is re-recorded under the candidate pair, so the second
time around it is an exact hit.  Any failure during a candidate check —
schema mismatch, budget blow-up, a corrupted row — degrades that
candidate to a miss; replay never raises.

Persistence mirrors the catalog's robustness contract: sqlite WAL +
busy timeout, ``meta`` stamps (schema version + canon version — a canon
bump makes every stored hash a dead dialect, so the file is discarded and
rebuilt; the schema-v1 → v2 signature-column migration rides the same
stamp, so a v1 store degrades to an empty rebuild, never to a replay
attempt over unkeyed rows), transient errors degrade to memory-only
operation, genuine corruption discards and rebuilds, and undecodable rows
are skipped, never fatal.  The in-memory index follows the kernel intern
table's generation-stamped rebuild contract (PR 7): ``repro.clear_caches()``
and any :meth:`InternTable.clear` bump trigger a lazy :meth:`reload` from
the serialized documents, so no deserialized object outlives an
invalidation.
"""

from __future__ import annotations

import json
import os
import sqlite3
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from threading import RLock
from typing import Any, Dict, Iterator, List, Optional, Tuple

from ..containment.result import ContainmentResult, Witness, not_contained
from ..core.serialize import witness_from_json, witness_to_json
from ..kernel.instance import instance_signature
from ..kernel.intern import INTERN
from .canon import CANON_VERSION
from .metrics import MetricsRegistry
from .registry import register_instance_cache, unregister_cache

#: Bump when the witness store's sqlite layout changes.  "2" added the
#: per-side predicate-signature columns and the provenance column; a "1"
#: store is discarded and rebuilt (the stamp contract), never replayed.
WITNESS_SCHEMA_VERSION = "2"

#: How a store answers :meth:`WitnessStore.replay`:
#: ``exact`` — hash-equal rungs only (the PR 8 pair memo);
#: ``structural`` — hash rungs plus signature-keyed subsumption replay;
#: ``off`` — never replay (recording still works).
REPLAY_MODES = ("exact", "structural", "off")

#: How long a connection waits on a locked store before giving up.
_BUSY_TIMEOUT_MS = 5_000


def omq_signature(omq: Any) -> str:
    """The predicate-signature key of one OMQ side.

    The sorted ``pred/arity`` pairs of ``S ∪ sch(Σ)`` ∪ the query's
    predicates, comma-joined — everything the OMQ can mention, in a
    canonical spelling.  Atom reorderings, variable renamings, and
    redundant atoms over existing predicates all preserve it; a predicate
    rename does not.  Returns ``""`` (which never keys the structural
    index) when the argument has no well-formed schema.
    """
    try:
        relations = omq.full_schema().relations
    except Exception:
        return ""
    return ",".join(f"{p}/{a}" for p, a in sorted(relations.items()))


def instance_signature_key(database: Any) -> str:
    """The witness database's own signature, via the interned kernel view."""
    try:
        pairs = instance_signature(database)
    except Exception:
        return ""
    return ",".join(f"{p}/{a}" for p, a in sorted(pairs))


@dataclass(frozen=True)
class StoredWitness:
    """One persisted counterexample: the pair it refutes and its witness.

    ``lhs_sig``/``rhs_sig`` are the predicate-signature keys of the two
    sides (empty when the recording call site could not supply the OMQs);
    ``origin`` records provenance — ``"decided"`` for a fresh verdict,
    ``"hash-replay"``/``"structural-replay"`` for re-records of cross-pair
    hits.  ``doc`` is the canonical JSON document the witness was stored
    as; it is kept alongside the deserialized form so a generation-stamped
    :meth:`WitnessStore.reload` can rebuild every in-memory object from
    scratch without touching the disk file.
    """

    lhs: str
    rhs: str
    lhs_sig: str
    rhs_sig: str
    origin: str
    doc: str
    witness: Witness


class WitnessStore:
    """Persistent structural index of NOT_CONTAINED witnesses.

    ``path=None`` keeps the store in memory (still useful within one
    long-lived engine: witnesses survive result-cache eviction).  All
    operations are total — storage failures cost durability, never
    correctness, and :meth:`replay` degrades to a miss on any anomaly.

    Parameters
    ----------
    max_entries:
        Cap on stored witnesses; the oldest entry is evicted first
        (``engine.witness.evictions``).
    scan_limit:
        How many candidates each cross-pair rung (same-LHS/same-RHS, and
        separately the structural rung) may hom-check after the
        exact-pair probe misses.  Bounds the inline work a submission can
        spend before falling through to the full decision procedure.
    replay_mode:
        One of :data:`REPLAY_MODES`; ``"structural"`` by default.
    replay_budget:
        Per-evaluation step cap for the structural rung's two fresh
        checks (``min``-ed with the job's own budgets).  A check the
        budget cannot settle degrades that candidate to a miss.
    metrics:
        The registry the ``engine.witness.*`` counters land in; the
        :class:`~repro.engine.engine.BatchEngine` shares its own registry
        so the counters surface in ``stats()`` and ``/metrics``.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        *,
        max_entries: int = 4096,
        scan_limit: int = 8,
        replay_mode: str = "structural",
        replay_budget: int = 20_000,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        if replay_mode not in REPLAY_MODES:
            raise ValueError(
                f"unknown replay_mode {replay_mode!r}; "
                f"choose from {REPLAY_MODES}"
            )
        self._lock = RLock()
        self.metrics = metrics
        self.max_entries = max(1, int(max_entries))
        self.scan_limit = max(0, int(scan_limit))
        self.replay_mode = replay_mode
        self.replay_budget = max(1, int(replay_budget))
        #: (lhs, rhs) -> StoredWitness, insertion-ordered for eviction.
        self._records: "OrderedDict[Tuple[str, str], StoredWitness]" = (
            OrderedDict()
        )
        self._by_lhs: Dict[str, List[Tuple[str, str]]] = {}
        self._by_rhs: Dict[str, List[Tuple[str, str]]] = {}
        #: (lhs_sig, rhs_sig) -> keys; rows with an empty signature on
        #: either side never enter (they cannot be structurally matched).
        self._by_signature: Dict[Tuple[str, str], List[Tuple[str, str]]] = {}
        self.recoveries = 0
        self.transient_errors = 0
        self.skipped_rows = 0
        self.replay_errors = 0
        self._generation = INTERN.generation
        self._path = Path(path) if path is not None else None
        self._conn: Optional[sqlite3.Connection] = None
        if self._path is not None:
            self._open()
        # clear_caches() reloads (re-deserializes) the in-memory index; it
        # never discards the durable facts.  Weakly registered, so a
        # closed-and-dropped store unregisters itself.
        self._registry_key = register_instance_cache(
            "engine.witness_store", self, "reload"
        )

    # -- metrics ----------------------------------------------------------

    def _count(self, name: str, value: int = 1) -> None:
        if self.metrics is not None and value:
            self.metrics.counter(name).inc(value)

    # -- persistence ------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        assert self._path is not None
        conn = sqlite3.connect(str(self._path), check_same_thread=False)
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute(f"PRAGMA busy_timeout={int(_BUSY_TIMEOUT_MS)}")
        return conn

    def _create_tables(self, conn: sqlite3.Connection) -> None:
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta "
            "(key TEXT PRIMARY KEY, value TEXT)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS witnesses "
            "(lhs TEXT, rhs TEXT, lhs_sig TEXT DEFAULT '', "
            "rhs_sig TEXT DEFAULT '', origin TEXT DEFAULT 'decided', "
            "doc TEXT, PRIMARY KEY (lhs, rhs))"
        )
        conn.execute(
            "CREATE INDEX IF NOT EXISTS witnesses_by_signature "
            "ON witnesses (lhs_sig, rhs_sig)"
        )

    def _expected_stamps(self) -> Dict[str, str]:
        return {
            "schema_version": WITNESS_SCHEMA_VERSION,
            "canon_version": CANON_VERSION,
        }

    def _open(self) -> None:
        """Open (or rebuild) the store file and load it; never raises."""
        assert self._path is not None
        try:
            if self._path.parent != Path(""):
                self._path.parent.mkdir(parents=True, exist_ok=True)
            conn = self._connect()
            self._create_tables(conn)
            stamps = dict(conn.execute("SELECT key, value FROM meta"))
            if stamps and stamps != self._expected_stamps():
                # A canon or schema bump means every stored row speaks a
                # dead dialect: discard, don't migrate.  Replay over an
                # empty rebuild is an honest miss — a mismatched store is
                # never consulted, structurally or otherwise.
                conn.close()
                self._discard_file()
                conn = self._connect()
                self._create_tables(conn)
                stamps = {}
            if not stamps:
                conn.executemany(
                    "INSERT OR REPLACE INTO meta VALUES (?, ?)",
                    sorted(self._expected_stamps().items()),
                )
                conn.commit()
            for lhs, rhs, lhs_sig, rhs_sig, origin, doc in conn.execute(
                "SELECT lhs, rhs, lhs_sig, rhs_sig, origin, doc "
                "FROM witnesses ORDER BY rowid"
            ):
                record = self._decode(
                    str(lhs),
                    str(rhs),
                    str(lhs_sig or ""),
                    str(rhs_sig or ""),
                    str(origin or "decided"),
                    str(doc),
                )
                if record is not None:
                    self._index_locked(record)
            self._conn = conn
        except sqlite3.OperationalError:
            self.transient_errors += 1
            self._conn = None
        except (sqlite3.Error, OSError):
            self._recover()

    def _decode(
        self,
        lhs: str,
        rhs: str,
        lhs_sig: str,
        rhs_sig: str,
        origin: str,
        doc: str,
    ) -> Optional[StoredWitness]:
        """Parse one stored row; a bad row is skipped, never fatal."""
        try:
            witness = witness_from_json(json.loads(doc))
        except Exception:
            self.skipped_rows += 1
            return None
        return StoredWitness(lhs, rhs, lhs_sig, rhs_sig, origin, doc, witness)

    def _discard_file(self) -> None:
        assert self._path is not None
        self.recoveries += 1
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(str(self._path) + suffix)
            except OSError:
                pass

    def _degrade(self) -> None:
        self.transient_errors += 1
        if self._conn is not None:
            try:
                self._conn.rollback()
            except sqlite3.Error:
                pass

    def _recover(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        if self._path is None:
            return
        self._discard_file()
        try:
            conn = self._connect()
            self._create_tables(conn)
            conn.executemany(
                "INSERT OR REPLACE INTO meta VALUES (?, ?)",
                sorted(self._expected_stamps().items()),
            )
            conn.commit()
            self._conn = conn
        except (sqlite3.Error, OSError):
            self._conn = None  # memory-only from here on

    def _persist(self, sql: str, rows: List[tuple]) -> None:
        """Best-effort write-through of one statement over *rows*."""
        if self._conn is None:
            return
        try:
            self._conn.executemany(sql, rows)
            self._conn.commit()
        except sqlite3.OperationalError:
            self._degrade()
        except sqlite3.Error:
            self._recover()

    # -- the in-memory index ----------------------------------------------

    def _index_locked(self, record: StoredWitness) -> None:
        key = (record.lhs, record.rhs)
        if key in self._records:
            return
        self._records[key] = record
        self._by_lhs.setdefault(record.lhs, []).append(key)
        self._by_rhs.setdefault(record.rhs, []).append(key)
        if record.lhs_sig and record.rhs_sig:
            self._by_signature.setdefault(
                (record.lhs_sig, record.rhs_sig), []
            ).append(key)

    def _unindex_locked(self, key: Tuple[str, str]) -> None:
        record = self._records.pop(key, None)
        if record is None:
            return
        indexes: List[Tuple[Dict, Any]] = [
            (self._by_lhs, record.lhs),
            (self._by_rhs, record.rhs),
        ]
        if record.lhs_sig and record.rhs_sig:
            indexes.append(
                (self._by_signature, (record.lhs_sig, record.rhs_sig))
            )
        for index, index_key in indexes:
            keys = index.get(index_key)
            if keys is not None:
                try:
                    keys.remove(key)
                except ValueError:
                    pass
                if not keys:
                    del index[index_key]

    def _maybe_reload_locked(self) -> None:
        if INTERN.generation != self._generation:
            self._reload_locked()

    def _reload_locked(self) -> None:
        """Rebuild every in-memory object from the serialized documents.

        This is the generation-stamped invalidation contract: after an
        intern-table clear (``repro.clear_caches()`` or a direct
        ``INTERN.clear()``), nothing deserialized before the bump
        survives — each witness is re-parsed from its canonical JSON doc,
        so instances re-enter the (new) intern world lazily like any
        other fresh object.
        """
        old = list(self._records.values())
        self._records = OrderedDict()
        self._by_lhs = {}
        self._by_rhs = {}
        self._by_signature = {}
        for stale in old:
            record = self._decode(
                stale.lhs,
                stale.rhs,
                stale.lhs_sig,
                stale.rhs_sig,
                stale.origin,
                stale.doc,
            )
            if record is not None:
                self._index_locked(record)
        self._generation = INTERN.generation

    # -- public API -------------------------------------------------------

    @property
    def persistent(self) -> bool:
        return self._conn is not None

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    def record(
        self,
        h1: str,
        h2: str,
        witness: Witness,
        *,
        q1: Any = None,
        q2: Any = None,
        lhs_sig: str = "",
        rhs_sig: str = "",
        origin: str = "decided",
    ) -> bool:
        """Persist *witness* as a counterexample to ``hash h1 ⊆ hash h2``.

        Returns True iff the pair was new.  The first witness for a pair
        wins (any stored witness refutes the pair; churning rows buys
        nothing).  When the call site can supply the OMQs (``q1``/``q2``)
        or precomputed keys, the row is signature-keyed and joins the
        structural index; without them it still replays on the hash
        rungs.  Serialization failures drop the witness silently —
        durability is best-effort, correctness never depends on it.
        """
        if not lhs_sig and q1 is not None:
            lhs_sig = omq_signature(q1)
        if not rhs_sig and q2 is not None:
            rhs_sig = omq_signature(q2)
        with self._lock:
            self._maybe_reload_locked()
            key = (h1, h2)
            if key in self._records:
                return False
            try:
                doc = json.dumps(
                    witness_to_json(witness),
                    sort_keys=True,
                    separators=(",", ":"),
                )
            except Exception:
                return False
            self._index_locked(
                StoredWitness(h1, h2, lhs_sig, rhs_sig, origin, doc, witness)
            )
            self._count("engine.witness.stored")
            self._persist(
                "INSERT OR REPLACE INTO witnesses VALUES (?, ?, ?, ?, ?, ?)",
                [(h1, h2, lhs_sig, rhs_sig, origin, doc)],
            )
            evicted: List[tuple] = []
            while len(self._records) > self.max_entries:
                oldest = next(iter(self._records))
                self._unindex_locked(oldest)
                evicted.append(oldest)
            if evicted:
                self._count("engine.witness.evictions", len(evicted))
                self._persist(
                    "DELETE FROM witnesses WHERE lhs = ? AND rhs = ?",
                    evicted,
                )
            return True

    def _candidates_locked(
        self, h1: str, h2: str
    ) -> List[StoredWitness]:
        """The bounded hash-rung scan list: same-LHS first, then same-RHS."""
        out: List[StoredWitness] = []
        seen = set()
        for key in self._by_lhs.get(h1, ()):
            if len(out) >= self.scan_limit:
                return out
            out.append(self._records[key])
            seen.add(key)
        for key in self._by_rhs.get(h2, ()):
            if len(out) >= self.scan_limit:
                break
            if key not in seen:
                out.append(self._records[key])
        return out

    def _structural_candidates_locked(
        self,
        h1: str,
        h2: str,
        lhs_sig: str,
        rhs_sig: str,
        skip: set,
    ) -> List[StoredWitness]:
        """Signature-compatible candidates the hash rungs did not cover."""
        if not lhs_sig or not rhs_sig:
            return []
        out: List[StoredWitness] = []
        for key in self._by_signature.get((lhs_sig, rhs_sig), ()):
            if len(out) >= self.scan_limit:
                break
            if key == (h1, h2) or key in skip:
                continue
            out.append(self._records[key])
        return out

    def replay(self, job: Any) -> Optional[ContainmentResult]:
        """Try to refute *job* (a ContainmentJob) from stored witnesses.

        Returns a NOT_CONTAINED result with the replayed witness attached,
        or ``None`` (a miss — including every anomaly: schema mismatch,
        evaluation failure, inexact negative evidence, blown replay
        budget).  ``replay_mode="off"`` misses unconditionally.
        """
        if self.replay_mode == "off":
            return None
        if getattr(job, "kind", None) != "containment":
            return None
        if not hasattr(job, "content_hashes"):
            return None
        h1, h2 = job.content_hashes()
        structural = self.replay_mode == "structural"
        lhs_sig = rhs_sig = ""
        if structural:
            lhs_sig = omq_signature(getattr(job, "q1", None))
            rhs_sig = omq_signature(getattr(job, "q2", None))
        with self._lock:
            self._maybe_reload_locked()
            exact = self._records.get((h1, h2))
            if exact is not None:
                self._count("engine.witness.hits")
                self._count("engine.witness.exact_hits")
                return not_contained(
                    "witness-replay",
                    exact.witness.database,
                    exact.witness.answer,
                    "stored witness for this exact canonical pair",
                )
            candidates = self._candidates_locked(h1, h2)
            structural_candidates = self._structural_candidates_locked(
                h1,
                h2,
                lhs_sig,
                rhs_sig,
                {(c.lhs, c.rhs) for c in candidates},
            )
        # Evaluations run outside the lock: a hom-check is cheap but not
        # free, and replay must never serialize concurrent submitters.
        for candidate in candidates:
            self._count("engine.witness.replays")
            result = self._check_candidate(job, h1, h2, candidate)
            if result is not None:
                # Re-record under the candidate pair: next time it is an
                # exact (zero-evaluation) hit.
                self.record(
                    h1,
                    h2,
                    result.witness,
                    lhs_sig=lhs_sig,
                    rhs_sig=rhs_sig,
                    origin="hash-replay",
                )
                self._count("engine.witness.hits")
                return result
        for candidate in structural_candidates:
            self._count("engine.witness.replays")
            self._count("engine.witness.structural.attempts")
            result = self._check_structural(job, candidate)
            if result is not None:
                self.record(
                    h1,
                    h2,
                    result.witness,
                    lhs_sig=lhs_sig,
                    rhs_sig=rhs_sig,
                    origin="structural-replay",
                )
                self._count("engine.witness.hits")
                self._count("engine.witness.structural.hits")
                return result
        self._count("engine.witness.misses")
        return None

    def _job_budgets(self, job: Any, cap: Optional[int]) -> Dict[str, Any]:
        """Evaluation kwargs from the job's budgets, optionally capped."""
        steps = getattr(job, "chase_max_steps", 200_000)
        kwargs: Dict[str, Any] = {
            "chase_max_steps": min(steps, cap) if cap else steps,
            "chase_max_depth": getattr(job, "chase_max_depth", None),
        }
        budget = getattr(job, "rewriting_budget", None)
        if cap:
            kwargs["rewriting_budget"] = (
                min(budget, cap) if budget is not None else cap
            )
        elif budget is not None:
            kwargs["rewriting_budget"] = budget
        return kwargs

    def _check_candidate(
        self, job: Any, h1: str, h2: str, candidate: StoredWitness
    ) -> Optional[ContainmentResult]:
        """One hom-check: does *candidate*'s witness refute *job*'s pair?

        The side whose canonical hash matches the stored side needs no
        re-check (NOT_CONTAINED verdicts are exact, so the stored
        membership/non-membership is a semantic fact about that hash);
        only the other side is evaluated, with the candidate job's own
        budgets.
        """
        from ..evaluation import evaluate_omq

        witness = candidate.witness
        kwargs = self._job_budgets(job, None)
        try:
            if candidate.lhs == h1:
                # c̄ ∈ Q1(D) is stored fact; need c̄ ∉ Q2(D), exactly.
                evaluation = evaluate_omq(job.q2, witness.database, **kwargs)
                if (
                    witness.answer not in evaluation.answers
                    and evaluation.exact
                ):
                    return not_contained(
                        "witness-replay",
                        witness.database,
                        witness.answer,
                        f"stored witness for lhs {h1[:12]} replayed "
                        "against the candidate RHS",
                    )
            elif candidate.rhs == h2:
                # c̄ ∉ Q2(D) is stored fact; need c̄ ∈ Q1(D) — membership
                # is sound even from an inexact (under-approximating)
                # evaluation.
                evaluation = evaluate_omq(job.q1, witness.database, **kwargs)
                if witness.answer in evaluation.answers:
                    return not_contained(
                        "witness-replay",
                        witness.database,
                        witness.answer,
                        f"stored witness for rhs {h2[:12]} replayed "
                        "against the candidate LHS",
                    )
        except Exception:
            # Anything — schema mismatch, arity mismatch, a budget
            # exception — degrades this candidate to a miss.
            self.replay_errors += 1
        return None

    def _check_structural(
        self, job: Any, candidate: StoredWitness
    ) -> Optional[ContainmentResult]:
        """Subsumption replay: two fresh kernel hom-checks, both required.

        Neither side of the candidate pair hash-matches the stored pair,
        so nothing transfers — the stored (D, c̄) is just a *suggested*
        counterexample.  It refutes the candidate iff

        1. ``c̄ ∈ Q1_cand(D)`` — membership, sound even when the capped
           evaluation is inexact;
        2. ``c̄ ∉ Q2_cand(D)`` — and the evaluation is *exact*; an
           inexact (truncated) evaluation under-approximates Q2's
           answers, so its silence proves nothing.

        A disconfirmed candidate counts as a refuted replay
        (``engine.witness.structural.refuted_replays``); an exception or
        blown ``replay_budget`` degrades to a miss via the error path.
        """
        from ..evaluation import evaluate_omq

        witness = candidate.witness
        kwargs = self._job_budgets(job, self.replay_budget)
        try:
            lhs_eval = evaluate_omq(job.q1, witness.database, **kwargs)
            if witness.answer in lhs_eval.answers:
                rhs_eval = evaluate_omq(job.q2, witness.database, **kwargs)
                if (
                    witness.answer not in rhs_eval.answers
                    and rhs_eval.exact
                ):
                    return not_contained(
                        "witness-replay",
                        witness.database,
                        witness.answer,
                        "structural replay: signature-compatible witness "
                        f"for {candidate.lhs[:12]} ⊄ {candidate.rhs[:12]} "
                        "re-confirmed against both candidate sides",
                    )
        except Exception:
            self.replay_errors += 1
            return None
        self._count("engine.witness.structural.refuted_replays")
        return None

    @staticmethod
    def _entry_dict(record: StoredWitness) -> Dict[str, Any]:
        return {
            "lhs": record.lhs,
            "rhs": record.rhs,
            "lhs_sig": record.lhs_sig,
            "rhs_sig": record.rhs_sig,
            "origin": record.origin,
            "db_sig": instance_signature_key(record.witness.database),
            "atoms": len(record.witness.database.atoms),
            "answer": [str(t) for t in record.witness.answer],
        }

    def entries(self) -> List[Dict[str, Any]]:
        """A listing for inspection: one dict per stored pair, insertion
        order preserved.  Prefer :meth:`iter_entries` (or the read-only
        classmethod :meth:`scan`) for large stores."""
        return list(self.iter_entries())

    def iter_entries(
        self, limit: Optional[int] = None
    ) -> Iterator[Dict[str, Any]]:
        """Stream up to *limit* entry dicts without materializing them all.

        The record list is snapshotted under the lock (references only);
        rendering happens outside it.
        """
        with self._lock:
            self._maybe_reload_locked()
            records = list(self._records.values())
        if limit is not None:
            records = records[: max(0, limit)]
        for record in records:
            yield self._entry_dict(record)

    @classmethod
    def scan(
        cls, path: str, *, limit: Optional[int] = None
    ) -> Tuple[Dict[str, Any], Iterator[Dict[str, Any]]]:
        """Read-only streaming view of a store *file*: ``(stats, rows)``.

        Unlike constructing a :class:`WitnessStore` (which loads every
        row into the in-memory index, and — per the stamp contract —
        *discards* a version-mismatched file), ``scan`` opens the sqlite
        file read-only, computes the stats with SQL aggregates, and
        yields at most *limit* decoded rows lazily.  Inspection of an
        arbitrarily large or foreign-versioned store is O(limit) memory
        and never mutates the file.  Raises :class:`ValueError` when the
        file is not a readable witness store.
        """
        try:
            conn = sqlite3.connect(
                f"file:{path}?mode=ro", uri=True, check_same_thread=False
            )
        except sqlite3.Error as exc:
            raise ValueError(str(exc)) from None
        try:
            try:
                stamps = dict(conn.execute("SELECT key, value FROM meta"))
                entries, lhs_keys, rhs_keys = conn.execute(
                    "SELECT COUNT(*), COUNT(DISTINCT lhs), "
                    "COUNT(DISTINCT rhs) FROM witnesses"
                ).fetchone()
            except sqlite3.Error as exc:
                raise ValueError(f"not a witness store: {exc}") from None
        except ValueError:
            conn.close()
            raise
        expected = {
            "schema_version": WITNESS_SCHEMA_VERSION,
            "canon_version": CANON_VERSION,
        }
        stats = {
            "entries": int(entries),
            "lhs_keys": int(lhs_keys),
            "rhs_keys": int(rhs_keys),
            "schema_version": stamps.get("schema_version", ""),
            "canon_version": stamps.get("canon_version", ""),
            "current": stamps == expected,
        }

        def _rows() -> Iterator[Dict[str, Any]]:
            try:
                try:
                    cursor = conn.execute(
                        "SELECT lhs, rhs, lhs_sig, rhs_sig, origin, doc "
                        "FROM witnesses ORDER BY rowid"
                    )
                except sqlite3.Error:
                    # A schema-v1 file has no signature columns; it still
                    # deserves a listing (replay would discard it, but
                    # inspection must not).
                    cursor = conn.execute(
                        "SELECT lhs, rhs, '', '', 'decided', doc "
                        "FROM witnesses ORDER BY rowid"
                    )
                yielded = 0
                for lhs, rhs, lhs_sig, rhs_sig, origin, doc in cursor:
                    if limit is not None and yielded >= limit:
                        break
                    try:
                        witness = witness_from_json(json.loads(str(doc)))
                    except Exception:
                        continue  # a bad row is skipped, never fatal
                    yielded += 1
                    yield cls._entry_dict(
                        StoredWitness(
                            str(lhs),
                            str(rhs),
                            str(lhs_sig or ""),
                            str(rhs_sig or ""),
                            str(origin or "decided"),
                            str(doc),
                            witness,
                        )
                    )
            finally:
                conn.close()

        return stats, _rows()

    def reload(self) -> None:
        """Drop and rebuild the in-memory index from serialized docs."""
        with self._lock:
            self._reload_locked()

    def stats(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._records),
                "lhs_keys": len(self._by_lhs),
                "rhs_keys": len(self._by_rhs),
                "signature_keys": len(self._by_signature),
                "max_entries": self.max_entries,
                "scan_limit": self.scan_limit,
                "replay_mode": self.replay_mode,
                "replay_budget": self.replay_budget,
                "persistent": self.persistent,
                "generation": self._generation,
                "recoveries": self.recoveries,
                "transient_errors": self.transient_errors,
                "skipped_rows": self.skipped_rows,
                "replay_errors": self.replay_errors,
            }

    def clear(self) -> None:
        """Forget every witness (memory and disk)."""
        with self._lock:
            self._records = OrderedDict()
            self._by_lhs = {}
            self._by_rhs = {}
            self._by_signature = {}
            if self._conn is not None:
                try:
                    self._conn.execute("DELETE FROM witnesses")
                    self._conn.commit()
                except sqlite3.OperationalError:
                    self._degrade()
                except sqlite3.Error:
                    self._recover()

    def close(self) -> None:
        with self._lock:
            unregister_cache(self._registry_key)
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    def __enter__(self) -> "WitnessStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
