"""The engine's result store: an in-memory LRU over pluggable backends.

Design (see DESIGN.md, "Batch engine" and section 8):

* **Keys** are canonical-content strings built by the jobs in
  :mod:`repro.engine.jobs` from the hashes of :mod:`repro.engine.canon`
  plus every procedure parameter that can change the answer (budgets,
  step limits).  α-equivalent inputs therefore hit the same row.
* **Values** are pickled library objects (``ContainmentResult``,
  ``RewritingResult``, classification outcomes) — everything the library
  returns is a frozen dataclass over hashable cores, so pickling is safe
  and round-trips exactly.
* **Backends**: :class:`ResultCache` is a front (LRU, pickling, metrics,
  registry hookup) over a :class:`CacheBackend` that moves raw bytes.
  Three ship in the :data:`BACKENDS` registry:

  - ``"sqlite"`` — the WAL-mode sqlite file (single-host, multi-process);
  - ``"sharded"`` — one file per entry under 256 hash-prefix shard
    directories, written atomically via ``os.replace`` — no locks at
    all, so it is safe on NFS and other shared filesystems where sqlite
    locking is unreliable;
  - ``"memory"`` — no disk layer (equivalent to ``cache_dir=None``).

  ``register_backend`` admits external implementations (e.g. a networked
  store) without touching this module.
* **Corruption tolerance**: the cache must never take down a query.  Every
  backend/pickle failure degrades to a miss; a structurally bad sqlite
  file (not a database, wrong schema version, wrong canon version) is
  deleted and rebuilt on open.  The sharded backend bakes both version
  stamps into its directory name, so a version bump simply starts a fresh
  directory.
* **Contention tolerance**: several processes may share one
  ``cache_dir`` (parallel batch runs, CI shards).  The sqlite backend
  opens in WAL mode with a busy timeout, and a *transient*
  ``sqlite3.OperationalError`` (``database is locked``, disk I/O
  hiccups) only ever costs that one lookup/store — the file is **not**
  discarded; deletion is reserved for genuine corruption
  (``sqlite3.DatabaseError`` and bad version stamps).  The sharded
  backend is contention-free by construction: concurrent writers race on
  ``os.replace``, and either complete entry wins.
* The in-memory LRU fronts the disk store so warm-batch lookups never
  touch the backend; it registers with :mod:`repro.engine.registry` so
  ``repro.clear_caches()`` empties it.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import sqlite3
import time
from collections import OrderedDict
from pathlib import Path
from threading import RLock
from typing import Any, Callable, Dict, Optional, Tuple

from . import registry
from .canon import CANON_VERSION
from .metrics import MetricsRegistry

#: Bump when the on-disk layout changes; old stores are discarded on open.
SCHEMA_VERSION = "1"

_DB_NAME = "repro-cache.sqlite"

#: How long a connection waits on a locked database before giving up.
#: Kept module-level so tests can shrink it without a 5s stall.
_BUSY_TIMEOUT_MS = 5_000


class CacheBackend:
    """The byte-moving contract behind :class:`ResultCache`.

    A backend stores opaque payloads under string keys.  Every method is
    *total*: failures degrade to a miss / no-op and are counted on
    ``transient_errors`` (hiccups: locks, I/O) or ``recoveries`` (the
    backend threw away damaged state), never raised.  The front holds its
    own lock around every backend call, so implementations need to be
    safe across *processes*, not across threads of one process.
    """

    #: Registry name; also reported by ``ResultCache.stats()["backend"]``.
    name = "abstract"

    def __init__(self) -> None:
        self.recoveries = 0
        self.transient_errors = 0

    @property
    def persistent(self) -> bool:
        """Whether stores currently reach durable storage."""
        raise NotImplementedError

    def load(self, key: str) -> Optional[bytes]:
        """The payload stored under *key*, or ``None`` (miss/failure)."""
        raise NotImplementedError

    def store(self, key: str, payload: bytes) -> None:
        """Persist *payload* under *key* (best effort)."""
        raise NotImplementedError

    def delete(self, key: str) -> None:
        """Drop *key* if present (used when its payload fails to decode)."""
        raise NotImplementedError

    def clear(self) -> None:
        """Drop every entry."""
        raise NotImplementedError

    def count(self) -> int:
        """Number of stored entries (0 on failure)."""
        raise NotImplementedError

    def close(self) -> None:
        """Release resources; the backend degrades to non-persistent."""


class SqliteBackend(CacheBackend):
    """The WAL-mode sqlite file store (single host, many processes)."""

    name = "sqlite"

    def __init__(self, cache_dir: str) -> None:
        super().__init__()
        self._path = Path(cache_dir) / _DB_NAME
        self._conn: Optional[sqlite3.Connection] = None
        self._open()

    # -- connection management -------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        """One configured connection: WAL for multi-process readers/writers,
        a busy timeout so concurrent commits wait instead of erroring."""
        conn = sqlite3.connect(str(self._path), check_same_thread=False)
        # WAL probes the file header, so a corrupt file fails here (as a
        # DatabaseError) before any query runs.
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute(f"PRAGMA busy_timeout={int(_BUSY_TIMEOUT_MS)}")
        return conn

    def _create_tables(self, conn: sqlite3.Connection) -> None:
        conn.execute(
            "CREATE TABLE IF NOT EXISTS meta "
            "(key TEXT PRIMARY KEY, value TEXT)"
        )
        conn.execute(
            "CREATE TABLE IF NOT EXISTS results "
            "(key TEXT PRIMARY KEY, payload BLOB, created REAL)"
        )

    def _open(self) -> None:
        """Open (or rebuild) the sqlite file; never raises."""
        try:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            conn = self._connect()
            self._create_tables(conn)
            stamps = dict(conn.execute("SELECT key, value FROM meta"))
            expected = {
                "schema_version": SCHEMA_VERSION,
                "canon_version": CANON_VERSION,
            }
            if stamps and stamps != expected:
                conn.close()
                self._discard_file()
                conn = self._connect()
                self._create_tables(conn)
                stamps = {}
            if not stamps:
                conn.executemany(
                    "INSERT OR REPLACE INTO meta VALUES (?, ?)",
                    sorted(expected.items()),
                )
                conn.commit()
            self._conn = conn
        except sqlite3.OperationalError:
            # Transient (locked/busy/unopenable): run memory-only for now,
            # but leave the shared file alone — another process may be
            # using it perfectly well.
            self.transient_errors += 1
            self._conn = None
        except (sqlite3.Error, OSError):
            self._recover()

    def _discard_file(self) -> None:
        self.recoveries += 1
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(str(self._path) + suffix)
            except OSError:
                pass

    def _degrade(self) -> None:
        """A transient failure (``database is locked``, I/O hiccup): count
        it, roll back any half-open transaction, and move on.  The file is
        shared state other processes rely on — never delete it for this."""
        self.transient_errors += 1
        if self._conn is not None:
            try:
                self._conn.rollback()
            except sqlite3.Error:
                pass

    def _recover(self) -> None:
        """Genuine corruption: throw the file away and start over; give up
        disk on repeat failure."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        self._discard_file()
        try:
            conn = self._connect()
            self._create_tables(conn)
            conn.executemany(
                "INSERT OR REPLACE INTO meta VALUES (?, ?)",
                sorted(
                    {
                        "schema_version": SCHEMA_VERSION,
                        "canon_version": CANON_VERSION,
                    }.items()
                ),
            )
            conn.commit()
            self._conn = conn
        except (sqlite3.Error, OSError):
            self._conn = None  # run memory-only from here on

    # -- CacheBackend ------------------------------------------------------

    @property
    def persistent(self) -> bool:
        return self._conn is not None

    def load(self, key: str) -> Optional[bytes]:
        if self._conn is None:
            return None
        try:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.OperationalError:
            self._degrade()
            return None
        except sqlite3.Error:
            self._recover()
            return None
        return row[0] if row is not None else None

    def store(self, key: str, payload: bytes) -> None:
        if self._conn is None:
            return
        try:
            self._conn.execute(
                "INSERT OR REPLACE INTO results VALUES (?, ?, ?)",
                (key, payload, time.time()),
            )
            self._conn.commit()
        except sqlite3.OperationalError:
            self._degrade()
        except sqlite3.Error:
            self._recover()

    def delete(self, key: str) -> None:
        if self._conn is None:
            return
        try:
            self._conn.execute("DELETE FROM results WHERE key = ?", (key,))
            self._conn.commit()
        except sqlite3.OperationalError:
            self._degrade()
        except sqlite3.Error:
            self._recover()

    def clear(self) -> None:
        if self._conn is None:
            return
        try:
            self._conn.execute("DELETE FROM results")
            self._conn.commit()
        except sqlite3.OperationalError:
            self._degrade()
        except sqlite3.Error:
            self._recover()

    def count(self) -> int:
        if self._conn is None:
            return 0
        try:
            return self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
        except sqlite3.OperationalError:
            self._degrade()
        except sqlite3.Error:
            self._recover()
        return 0

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None


class ShardedDirBackend(CacheBackend):
    """One file per entry under 256 hash-prefix shards — lock-free, NFS-safe.

    Layout: ``<cache_dir>/repro-cache-shards-v<schema>-c<canon>/<hh>/<hash>``
    where ``hh`` is the first byte of the key's sha256 (256-way fan-out
    keeps directory listings short on large catalogs) and ``hash`` the
    full digest.  Writes go to a unique temp file in the shard and land
    via ``os.replace`` — atomic on POSIX, so readers see either nothing
    or a complete payload and concurrent writers simply race to publish
    the same answer.  No byte-range locks are ever taken, which is what
    makes this layout safe on NFS and other shared mounts where sqlite's
    POSIX locking is famously broken.

    Version invalidation is structural: the schema/canon stamps live in
    the root directory's *name*, so a version bump just starts an empty
    directory and the stale one is ignored.
    """

    name = "sharded"

    def __init__(self, cache_dir: str) -> None:
        super().__init__()
        self.root = (
            Path(cache_dir)
            / f"repro-cache-shards-v{SCHEMA_VERSION}-c{CANON_VERSION}"
        )
        self._available = False
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            self._available = True
        except OSError:
            self.transient_errors += 1

    def _path_for(self, key: str) -> Path:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return self.root / digest[:2] / digest

    @property
    def persistent(self) -> bool:
        return self._available

    def load(self, key: str) -> Optional[bytes]:
        if not self._available:
            return None
        try:
            return self._path_for(key).read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            self.transient_errors += 1
            return None

    def store(self, key: str, payload: bytes) -> None:
        if not self._available:
            return
        path = self._path_for(key)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_bytes(payload)
            os.replace(tmp, path)
        except OSError:
            self.transient_errors += 1
            try:
                tmp.unlink()
            except OSError:
                pass

    def delete(self, key: str) -> None:
        try:
            self._path_for(key).unlink()
        except FileNotFoundError:
            pass
        except OSError:
            self.transient_errors += 1

    def clear(self) -> None:
        if not self._available:
            return
        try:
            for shard in self.root.iterdir():
                if not shard.is_dir():
                    continue
                for entry in shard.iterdir():
                    try:
                        entry.unlink()
                    except OSError:
                        self.transient_errors += 1
        except OSError:
            self.transient_errors += 1

    def count(self) -> int:
        if not self._available:
            return 0
        total = 0
        try:
            for shard in self.root.iterdir():
                if not shard.is_dir():
                    continue
                total += sum(
                    1
                    for entry in shard.iterdir()
                    if not entry.name.endswith(".tmp")
                )
        except OSError:
            self.transient_errors += 1
        return total

    def close(self) -> None:
        self._available = False


#: name -> factory(cache_dir) for disk-backed stores; ``"memory"`` is
#: handled by the front (no backend object at all).
BACKENDS: Dict[str, Callable[[str], CacheBackend]] = {
    "sqlite": SqliteBackend,
    "sharded": ShardedDirBackend,
}


def register_backend(
    name: str, factory: Callable[[str], CacheBackend]
) -> None:
    """Admit a custom :class:`CacheBackend` under *name* (e.g. a networked
    store); it becomes selectable via ``ResultCache(backend=name)`` and
    the CLI's ``--cache-backend``."""
    BACKENDS[name] = factory


def available_backends() -> Tuple[str, ...]:
    """Every selectable backend name, ``"memory"`` first."""
    return ("memory", *sorted(BACKENDS))


class ResultCache:
    """A two-level (LRU memory, pluggable disk backend) store for results.

    ``cache_dir=None`` (or ``backend="memory"``) gives a memory-only
    cache.  All operations are total: lookups return ``(found, value)``
    and failures of the disk layer only ever cost performance, never
    correctness.

    *backend* selects the disk layer: a registry name from
    :func:`available_backends`, or a ready :class:`CacheBackend` instance
    (in which case *cache_dir* is ignored).
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        memory_size: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
        backend: Any = "sqlite",
    ) -> None:
        self._lock = RLock()
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self._memory_size = max(1, memory_size)
        self.metrics = metrics or MetricsRegistry()
        self._backend: Optional[CacheBackend]
        if isinstance(backend, CacheBackend):
            self._backend = backend
        elif backend == "memory" or cache_dir is None:
            self._backend = None
        elif isinstance(backend, str):
            try:
                factory = BACKENDS[backend]
            except KeyError:
                raise ValueError(
                    f"unknown cache backend {backend!r}; "
                    f"choose from {', '.join(available_backends())}"
                ) from None
            self._backend = factory(cache_dir)
        else:
            raise TypeError(
                f"backend must be a name or CacheBackend, got {backend!r}"
            )
        registry.register_instance_cache(
            "engine.result_cache", self, "clear_memory"
        )

    # -- public API ------------------------------------------------------

    @property
    def backend_name(self) -> str:
        return self._backend.name if self._backend is not None else "memory"

    @property
    def persistent(self) -> bool:
        return self._backend is not None and self._backend.persistent

    @property
    def recoveries(self) -> int:
        return self._backend.recoveries if self._backend is not None else 0

    @property
    def transient_errors(self) -> int:
        return (
            self._backend.transient_errors
            if self._backend is not None
            else 0
        )

    def get(self, key: str) -> Tuple[bool, Any]:
        """Look *key* up; returns ``(found, value)``."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.metrics.counter("cache.memory_hits").inc()
                return True, self._memory[key]
            if self._backend is not None:
                payload = self._backend.load(key)
                if payload is not None:
                    try:
                        value = pickle.loads(payload)
                    except Exception:
                        # A payload we cannot decode is useless to every
                        # process — drop the entry, serve a miss.
                        self._backend.delete(key)
                    else:
                        self._remember(key, value)
                        self.metrics.counter("cache.disk_hits").inc()
                        return True, value
            self.metrics.counter("cache.misses").inc()
            return False, None

    def put(self, key: str, value: Any) -> None:
        """Store *value* under *key* in both layers (best effort on disk)."""
        with self._lock:
            self._remember(key, value)
            if self._backend is not None:
                try:
                    payload = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
                except Exception:
                    return  # unpicklable values live in memory only
                self._backend.store(key, payload)

    def clear_memory(self) -> None:
        """Empty the in-memory layer (the disk layer persists)."""
        with self._lock:
            self._memory.clear()

    def clear(self) -> None:
        """Empty both layers."""
        with self._lock:
            self._memory.clear()
            if self._backend is not None:
                self._backend.clear()

    def stats(self) -> dict:
        """Hit/miss counters plus sizes, as plain data."""
        with self._lock:
            disk_rows = (
                self._backend.count() if self._backend is not None else 0
            )
            snap = self.metrics.snapshot()
            memory_hits = snap.get("cache.memory_hits", 0)
            disk_hits = snap.get("cache.disk_hits", 0)
            misses = snap.get("cache.misses", 0)
            lookups = memory_hits + disk_hits + misses
            return {
                "backend": self.backend_name,
                "memory_entries": len(self._memory),
                "disk_entries": disk_rows,
                "memory_hits": memory_hits,
                "disk_hits": disk_hits,
                "misses": misses,
                "hit_rate": (
                    (memory_hits + disk_hits) / lookups if lookups else 0.0
                ),
                "persistent": self.persistent,
                "recoveries": self.recoveries,
                "transient_errors": self.transient_errors,
            }

    def close(self) -> None:
        with self._lock:
            if self._backend is not None:
                self._backend.close()

    # -- internals -------------------------------------------------------

    def _remember(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self._memory_size:
            self._memory.popitem(last=False)
