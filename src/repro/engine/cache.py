"""The engine's result store: an in-memory LRU over a persistent sqlite file.

Design (see DESIGN.md, "Batch engine"):

* **Keys** are canonical-content strings built by the jobs in
  :mod:`repro.engine.jobs` from the hashes of :mod:`repro.engine.canon`
  plus every procedure parameter that can change the answer (budgets,
  step limits).  α-equivalent inputs therefore hit the same row.
* **Values** are pickled library objects (``ContainmentResult``,
  ``RewritingResult``, classification outcomes) — everything the library
  returns is a frozen dataclass over hashable cores, so pickling is safe
  and round-trips exactly.
* **Corruption tolerance**: the cache must never take down a query.  Every
  sqlite/pickle failure degrades to a miss; a structurally bad file (not a
  database, wrong schema version, wrong canon version) is deleted and
  rebuilt on open.  The ``meta`` table stores both version stamps.
* **Contention tolerance**: several processes may share one
  ``cache_dir`` (parallel batch runs, CI shards).  The connection opens
  in WAL mode with a busy timeout, and a *transient*
  ``sqlite3.OperationalError`` (``database is locked``, disk I/O
  hiccups) only ever costs that one lookup/store — the file is **not**
  discarded; deletion is reserved for genuine corruption
  (``sqlite3.DatabaseError`` and bad version stamps).
* The in-memory LRU fronts the disk store so warm-batch lookups never
  touch sqlite; it registers with :mod:`repro.engine.registry` so
  ``repro.clear_caches()`` empties it.
"""

from __future__ import annotations

import os
import pickle
import sqlite3
import time
from collections import OrderedDict
from pathlib import Path
from threading import RLock
from typing import Any, Optional, Tuple

from . import registry
from .canon import CANON_VERSION
from .metrics import MetricsRegistry

#: Bump when the sqlite layout changes; old files are discarded on open.
SCHEMA_VERSION = "1"

_DB_NAME = "repro-cache.sqlite"

#: How long a connection waits on a locked database before giving up.
#: Kept module-level so tests can shrink it without a 5s stall.
_BUSY_TIMEOUT_MS = 5_000


class ResultCache:
    """A two-level (LRU memory, sqlite disk) store for engine results.

    ``cache_dir=None`` gives a memory-only cache.  All operations are
    total: lookups return ``(found, value)`` and failures of the disk
    layer only ever cost performance, never correctness.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        memory_size: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self._lock = RLock()
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self._memory_size = max(1, memory_size)
        self.metrics = metrics or MetricsRegistry()
        self._path: Optional[Path] = None
        self._conn: Optional[sqlite3.Connection] = None
        self.recoveries = 0
        self.transient_errors = 0
        if cache_dir is not None:
            self._path = Path(cache_dir) / _DB_NAME
            self._open_disk()
        registry.register_instance_cache(
            "engine.result_cache", self, "clear_memory"
        )

    # -- disk layer -----------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        """One configured connection: WAL for multi-process readers/writers,
        a busy timeout so concurrent commits wait instead of erroring."""
        assert self._path is not None
        conn = sqlite3.connect(str(self._path), check_same_thread=False)
        # WAL probes the file header, so a corrupt file fails here (as a
        # DatabaseError) before any query runs.
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute(f"PRAGMA busy_timeout={int(_BUSY_TIMEOUT_MS)}")
        return conn

    def _open_disk(self) -> None:
        """Open (or rebuild) the sqlite file; never raises."""
        assert self._path is not None
        try:
            self._path.parent.mkdir(parents=True, exist_ok=True)
            conn = self._connect()
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta "
                "(key TEXT PRIMARY KEY, value TEXT)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS results "
                "(key TEXT PRIMARY KEY, payload BLOB, created REAL)"
            )
            stamps = dict(conn.execute("SELECT key, value FROM meta"))
            expected = {
                "schema_version": SCHEMA_VERSION,
                "canon_version": CANON_VERSION,
            }
            if stamps and stamps != expected:
                conn.close()
                self._discard_file()
                conn = self._connect()
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS meta "
                    "(key TEXT PRIMARY KEY, value TEXT)"
                )
                conn.execute(
                    "CREATE TABLE IF NOT EXISTS results "
                    "(key TEXT PRIMARY KEY, payload BLOB, created REAL)"
                )
                stamps = {}
            if not stamps:
                conn.executemany(
                    "INSERT OR REPLACE INTO meta VALUES (?, ?)",
                    sorted(expected.items()),
                )
                conn.commit()
            self._conn = conn
        except sqlite3.OperationalError:
            # Transient (locked/busy/unopenable): run memory-only for now,
            # but leave the shared file alone — another process may be
            # using it perfectly well.
            self.transient_errors += 1
            self._conn = None
        except (sqlite3.Error, OSError):
            self._recover()

    def _discard_file(self) -> None:
        assert self._path is not None
        self.recoveries += 1
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(str(self._path) + suffix)
            except OSError:
                pass

    def _degrade(self) -> None:
        """A transient failure (``database is locked``, I/O hiccup): count
        it, roll back any half-open transaction, and move on.  The file is
        shared state other processes rely on — never delete it for this."""
        self.transient_errors += 1
        if self._conn is not None:
            try:
                self._conn.rollback()
            except sqlite3.Error:
                pass

    def _recover(self) -> None:
        """Genuine corruption: throw the file away and start over; give up
        disk on repeat failure."""
        if self._conn is not None:
            try:
                self._conn.close()
            except sqlite3.Error:
                pass
            self._conn = None
        if self._path is None:
            return
        self._discard_file()
        try:
            conn = self._connect()
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta "
                "(key TEXT PRIMARY KEY, value TEXT)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS results "
                "(key TEXT PRIMARY KEY, payload BLOB, created REAL)"
            )
            conn.executemany(
                "INSERT OR REPLACE INTO meta VALUES (?, ?)",
                sorted(
                    {
                        "schema_version": SCHEMA_VERSION,
                        "canon_version": CANON_VERSION,
                    }.items()
                ),
            )
            conn.commit()
            self._conn = conn
        except (sqlite3.Error, OSError):
            self._conn = None  # run memory-only from here on

    # -- public API ------------------------------------------------------

    @property
    def persistent(self) -> bool:
        return self._conn is not None

    def get(self, key: str) -> Tuple[bool, Any]:
        """Look *key* up; returns ``(found, value)``."""
        with self._lock:
            if key in self._memory:
                self._memory.move_to_end(key)
                self.metrics.counter("cache.memory_hits").inc()
                return True, self._memory[key]
            if self._conn is not None:
                try:
                    row = self._conn.execute(
                        "SELECT payload FROM results WHERE key = ?", (key,)
                    ).fetchone()
                except sqlite3.OperationalError:
                    self._degrade()
                    row = None
                except sqlite3.Error:
                    self._recover()
                    row = None
                if row is not None:
                    try:
                        value = pickle.loads(row[0])
                    except Exception:
                        self._delete_row(key)
                    else:
                        self._remember(key, value)
                        self.metrics.counter("cache.disk_hits").inc()
                        return True, value
            self.metrics.counter("cache.misses").inc()
            return False, None

    def put(self, key: str, value: Any) -> None:
        """Store *value* under *key* in both layers (best effort on disk)."""
        with self._lock:
            self._remember(key, value)
            if self._conn is not None:
                try:
                    payload = pickle.dumps(value, pickle.HIGHEST_PROTOCOL)
                except Exception:
                    return  # unpicklable values live in memory only
                try:
                    self._conn.execute(
                        "INSERT OR REPLACE INTO results VALUES (?, ?, ?)",
                        (key, payload, time.time()),
                    )
                    self._conn.commit()
                except sqlite3.OperationalError:
                    self._degrade()  # the value still lives in memory
                except sqlite3.Error:
                    self._recover()

    def clear_memory(self) -> None:
        """Empty the in-memory layer (the disk layer persists)."""
        with self._lock:
            self._memory.clear()

    def clear(self) -> None:
        """Empty both layers."""
        with self._lock:
            self._memory.clear()
            if self._conn is not None:
                try:
                    self._conn.execute("DELETE FROM results")
                    self._conn.commit()
                except sqlite3.OperationalError:
                    self._degrade()
                except sqlite3.Error:
                    self._recover()

    def stats(self) -> dict:
        """Hit/miss counters plus sizes, as plain data."""
        with self._lock:
            disk_rows = 0
            if self._conn is not None:
                try:
                    disk_rows = self._conn.execute(
                        "SELECT COUNT(*) FROM results"
                    ).fetchone()[0]
                except sqlite3.OperationalError:
                    self._degrade()
                except sqlite3.Error:
                    self._recover()
            snap = self.metrics.snapshot()
            memory_hits = snap.get("cache.memory_hits", 0)
            disk_hits = snap.get("cache.disk_hits", 0)
            misses = snap.get("cache.misses", 0)
            lookups = memory_hits + disk_hits + misses
            return {
                "memory_entries": len(self._memory),
                "disk_entries": disk_rows,
                "memory_hits": memory_hits,
                "disk_hits": disk_hits,
                "misses": misses,
                "hit_rate": (
                    (memory_hits + disk_hits) / lookups if lookups else 0.0
                ),
                "persistent": self.persistent,
                "recoveries": self.recoveries,
                "transient_errors": self.transient_errors,
            }

    def close(self) -> None:
        with self._lock:
            if self._conn is not None:
                try:
                    self._conn.close()
                except sqlite3.Error:
                    pass
                self._conn = None

    # -- internals -------------------------------------------------------

    def _remember(self, key: str, value: Any) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self._memory_size:
            self._memory.popitem(last=False)

    def _delete_row(self, key: str) -> None:
        assert self._conn is not None
        try:
            self._conn.execute("DELETE FROM results WHERE key = ?", (key,))
            self._conn.commit()
        except sqlite3.OperationalError:
            self._degrade()
        except sqlite3.Error:
            self._recover()
