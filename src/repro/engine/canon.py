"""Isomorphism-invariant canonical forms and content hashes.

The engine's cache is keyed by *content*, not by object identity or source
text: two α-equivalent CQs (equal up to bijective variable renaming and
body-atom reordering), two tgd sets listing the same rules in different
orders, or two OMQ documents that parse to isomorphic structures must map
to the same key, or the cache silently loses most of its hits.

``core/serialize.py`` renames *unsafe* variable names to ``v0, v1, ...``
but keeps user-chosen names, and ``CQ.standardize`` is order-sensitive —
both are normalizations, not canonical forms.  This module computes true
canonical labelings:

1. variables are partitioned by **iterated colour refinement** (the
   Weisfeiler–Leman idea on the query's incidence structure: a variable's
   colour summarizes the predicates/positions it occurs at and the colours
   of its co-arguments, iterated to a fixpoint);
2. ties inside a colour class are broken by **exhaustive search for the
   lexicographically least rendering**, which is what makes the form
   canonical rather than merely normalized.  The search space is the
   product of factorials of the class sizes; refinement keeps classes tiny
   (almost always singletons) for real queries.

For pathologically symmetric inputs whose search space exceeds
``LABELING_BUDGET``, the labeler falls back to refinement order with the
variable's *name* as the final tie-break — still deterministic, and still
invariant under atom/rule reordering, but not under adversarial renaming
of automorphic variables.  The fallback is flagged on the result so
callers can observe it; no test-suite or generator input comes close to
the budget.

Head variables of a CQ are *pinned*: their canonical identity is their
first-occurrence position in the head (that position is semantic — it
determines the answer tuple), so only existential variables participate
in the search.

Content hashes are SHA-256 over a versioned, type-tagged canonical text;
bump :data:`CANON_VERSION` whenever the rendering changes so stale
persistent caches self-invalidate.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from math import factorial
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..core.atoms import Atom
from ..core.omq import OMQ
from ..core.queries import CQ, UCQ
from ..core.schema import Schema
from ..core.terms import Constant, Null, Term, Variable
from ..core.tgd import TGD
from ..kernel.intern import INTERN

#: Version tag mixed into every digest; bump on any rendering change.
CANON_VERSION = "1"

#: Maximum number of candidate labelings the exact tie-break may explore.
LABELING_BUDGET = 40_320  # 8!


@dataclass(frozen=True)
class CanonicalForm:
    """A canonical rendering plus whether the exact labeler produced it."""

    text: str
    exact: bool


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------


def _render_term(
    t: Term,
    pins: Mapping[Variable, int],
    assignment: Mapping[Variable, int],
) -> str:
    if isinstance(t, Constant):
        return f"c:{t.name}"
    if isinstance(t, Null):
        return f"n:{t.ident}"
    if t in pins:
        return f"h:{pins[t]}"
    return f"x:{assignment[t]}"


def _render_atoms(
    tagged_atoms: Sequence[Tuple[str, Atom]],
    pins: Mapping[Variable, int],
    assignment: Mapping[Variable, int],
) -> Tuple[str, ...]:
    return tuple(
        sorted(
            f"{tag}|{a.predicate}({','.join(_render_term(t, pins, assignment) for t in a.args)})"
            for tag, a in tagged_atoms
        )
    )


# ---------------------------------------------------------------------------
# Colour refinement
# ---------------------------------------------------------------------------


def _refine_colours(
    tagged_atoms: Sequence[Tuple[str, Atom]],
    pins: Mapping[Variable, int],
    free: Sequence[Variable],
) -> Dict[Variable, int]:
    """Iterated colour refinement; returns each free variable's colour rank.

    The inner loop runs entirely over integers.  Before iterating, every
    symbol the refinement compares is replaced by an *order-preserving
    rank* of the string the pre-interned refinement would have built — tag
    ranks, predicate ranks, one rank per distinct fixed-slot rendering
    (``c:``/``h:``/``n:``, all of which sort below ``w:``), and a
    ``strrank`` table mapping each colour number to the rank of its
    decimal rendering (``"w:10" < "w:2"`` lexicographically, so numeric
    colour order is *not* string order).  Rank order equals string order,
    so the colour classes — and, critically, their rank order, which fixes
    the admissible labeling set downstream — are byte-for-byte the same as
    the string-based refinement's; strings themselves are only rendered at
    the final labeling.  Terms are keyed by their kernel intern ids
    (:data:`~repro.kernel.intern.INTERN`), so the compile pass hashes ints,
    not dataclasses.
    """
    if not free:
        return {}
    n = len(free)
    var_ix = {INTERN.term_id(v): i for i, v in enumerate(free)}
    tag_rank = {
        t: r for r, t in enumerate(sorted({tag for tag, _ in tagged_atoms}))
    }
    pred_rank = {
        p: r
        for r, p in enumerate(sorted({a.predicate for _, a in tagged_atoms}))
    }

    # Compile each atom once: (tag rank, predicate rank, arity, arg codes)
    # where a free variable is ``-var_index - 1`` and a fixed term is a
    # placeholder resolved to its string rank below.
    fixed_strs: Dict[int, str] = {}
    compiled: List[Tuple[int, int, int, List[int]]] = []
    for tag, a in tagged_atoms:
        codes: List[int] = []
        for t in a.args:
            tid = INTERN.term_id(t)
            i = var_ix.get(tid)
            if i is not None:
                codes.append(-i - 1)
            else:
                if tid not in fixed_strs:
                    if isinstance(t, Constant):
                        fixed_strs[tid] = f"c:{t.name}"
                    elif isinstance(t, Null):
                        fixed_strs[tid] = f"n:{t.ident}"
                    else:
                        fixed_strs[tid] = f"h:{pins[t]}"
                codes.append(tid)
        compiled.append((tag_rank[tag], pred_rank[a.predicate], a.arity, codes))
    fixed_rank = {
        s: r for r, s in enumerate(sorted(set(fixed_strs.values())))
    }
    for entry in compiled:
        codes = entry[3]
        for pos, code in enumerate(codes):
            if code >= 0:
                codes[pos] = fixed_rank[fixed_strs[code]]
    base = len(fixed_rank)
    # Rank of each colour number's decimal string ("w:..." slots compare
    # as strings); colours are always < n.
    strrank = [0] * n
    for r, colour in enumerate(sorted(range(n), key=str)):
        strrank[colour] = r

    # Initial colour: the multiset of (tag, predicate, arity, position)
    # occurrences, via their ranks.
    occurrences: List[List[Tuple[int, int, int, int]]] = [[] for _ in range(n)]
    for trk, prk, arity, codes in compiled:
        for pos, code in enumerate(codes):
            if code < 0:
                occurrences[-code - 1].append((trk, prk, arity, pos))
    keys = [tuple(sorted(occ)) for occ in occurrences]
    init_rank = {k: r for r, k in enumerate(sorted(set(keys)))}
    colours = [init_rank[k] for k in keys]

    for _ in range(n):
        views: List[List[Tuple]] = [[] for _ in range(n)]
        for trk, prk, _arity, codes in compiled:
            slots = tuple(
                code if code >= 0 else base + strrank[colours[-code - 1]]
                for code in codes
            )
            for pos, code in enumerate(codes):
                if code < 0:
                    views[-code - 1].append((trk, prk, pos, slots))
        new_keys = [
            (colours[i], tuple(sorted(views[i]))) for i in range(n)
        ]
        ranks = {k: r for r, k in enumerate(sorted(set(new_keys)))}
        new_colours = [ranks[k] for k in new_keys]
        if len(ranks) == len(set(colours)):
            colours = new_colours
            break
        colours = new_colours
    return {free[i]: colours[i] for i in range(n)}


# ---------------------------------------------------------------------------
# Canonical labeling
# ---------------------------------------------------------------------------


def _canonical_atoms(
    tagged_atoms: Sequence[Tuple[str, Atom]],
    pinned: Sequence[Variable] = (),
) -> Tuple[Tuple[str, ...], Dict[Variable, int], bool]:
    """The least rendering of *tagged_atoms* over admissible labelings.

    Returns ``(sorted rendered atoms, variable assignment, exact)``.
    """
    pins: Dict[Variable, int] = {}
    for v in pinned:
        if v not in pins:
            pins[v] = len(pins)
    seen: Dict[Variable, None] = {}
    for _, a in tagged_atoms:
        for t in a.args:
            if isinstance(t, Variable) and t not in pins:
                seen.setdefault(t, None)
    free = list(seen)
    if not free:
        return _render_atoms(tagged_atoms, pins, {}), {}, True

    colours = _refine_colours(tagged_atoms, pins, free)
    classes: List[List[Variable]] = []
    for rank in sorted(set(colours.values())):
        classes.append([v for v in free if colours[v] == rank])

    search_space = 1
    for cls in classes:
        search_space *= factorial(len(cls))
        if search_space > LABELING_BUDGET:
            break
    if search_space > LABELING_BUDGET:
        # Deterministic fallback: refinement order, then variable name.
        assignment: Dict[Variable, int] = {}
        for cls in classes:
            for v in sorted(cls, key=lambda v: v.name):
                assignment[v] = len(assignment)
        return _render_atoms(tagged_atoms, pins, assignment), assignment, False

    best: Optional[Tuple[Tuple[str, ...], Dict[Variable, int]]] = None
    for perms in itertools.product(
        *(itertools.permutations(cls) for cls in classes)
    ):
        assignment = {}
        for perm in perms:
            for v in perm:
                assignment[v] = len(assignment)
        rendered = _render_atoms(tagged_atoms, pins, assignment)
        if best is None or rendered < best[0]:
            best = (rendered, assignment)
    assert best is not None
    return best[0], best[1], True


# ---------------------------------------------------------------------------
# Canonical forms per structure
# ---------------------------------------------------------------------------


def canonical_cq(q: CQ) -> CanonicalForm:
    """Canonical text of a CQ (name-independent, α- and order-invariant)."""
    pinned = [t for t in q.head if isinstance(t, Variable)]
    tagged = [("B", a) for a in q.body]
    rendered, assignment, exact = _canonical_atoms(tagged, pinned)
    pins: Dict[Variable, int] = {}
    for v in pinned:
        if v not in pins:
            pins[v] = len(pins)
    head = ",".join(_render_term(t, pins, assignment) for t in q.head)
    return CanonicalForm(f"({head})<-[{';'.join(rendered)}]", exact)


def canonical_ucq(q: UCQ) -> CanonicalForm:
    """Canonical text of a UCQ: sorted canonical disjuncts."""
    forms = [canonical_cq(d) for d in q.disjuncts]
    texts = sorted(f.text for f in forms)
    return CanonicalForm("|".join(texts), all(f.exact for f in forms))


def canonical_tgd(t: TGD) -> CanonicalForm:
    """Canonical text of a single tgd (all variables are searched)."""
    tagged = [("B", a) for a in t.body] + [("H", a) for a in t.head]
    rendered, _, exact = _canonical_atoms(tagged)
    return CanonicalForm(";".join(rendered), exact)


def canonical_tgds(sigma: Iterable[TGD]) -> CanonicalForm:
    """Canonical text of a tgd set: sorted per-rule canonical forms.

    Rules are universally closed sentences, so each is canonicalized
    independently and the set is order-insensitive.  Duplicate rules
    collapse (a set, per the paper's ``Σ``).
    """
    forms = [canonical_tgd(t) for t in sigma]
    texts = sorted(set(f.text for f in forms))
    return CanonicalForm("&".join(texts), all(f.exact for f in forms))


def canonical_schema(schema: Schema) -> str:
    """Canonical text of a schema: sorted ``name/arity`` pairs."""
    return ",".join(f"{p}/{schema.arity(p)}" for p in schema.predicates())


def canonical_omq(omq: OMQ) -> CanonicalForm:
    """Canonical text of an OMQ ``(S, Σ, q)``; the cosmetic name is ignored."""
    sigma = canonical_tgds(omq.sigma)
    query = canonical_ucq(omq.as_ucq())
    text = (
        f"S[{canonical_schema(omq.data_schema)}]"
        f"O[{sigma.text}]Q[{query.text}]"
    )
    return CanonicalForm(text, sigma.exact and query.exact)


def canonical_instance(instance) -> CanonicalForm:
    """Canonical text of an instance, invariant under null *renaming*.

    Labeled nulls are existentially quantified placeholders, so two chase
    outputs that differ only in which null idents their factories handed
    out must canonicalize identically — that is exactly the equivalence the
    kernel's chase-parity checks need.  Each null is re-cast as a variable
    and canonically labeled; constants (and atom/set order) never matter.
    """
    blanks: Dict[Term, Term] = {
        n: Variable(f"!n{n.ident}")
        for n in sorted(instance.nulls(), key=lambda n: str(n.ident))
    }
    tagged = [("I", a.substitute(blanks)) for a in instance.atoms]
    rendered, _, exact = _canonical_atoms(tagged)
    return CanonicalForm(";".join(rendered), exact)


# ---------------------------------------------------------------------------
# Content hashes
# ---------------------------------------------------------------------------


def _digest(kind: str, text: str) -> str:
    payload = f"repro-canon:{CANON_VERSION}:{kind}:{text}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def hash_cq(q: CQ) -> str:
    """Stable content hash of a CQ."""
    return _digest("cq", canonical_cq(q).text)


def hash_ucq(q: UCQ) -> str:
    """Stable content hash of a UCQ."""
    return _digest("ucq", canonical_ucq(q).text)


def hash_tgds(sigma: Iterable[TGD]) -> str:
    """Stable content hash of a tgd set."""
    return _digest("tgds", canonical_tgds(sigma).text)


def hash_omq(omq: OMQ) -> str:
    """Stable content hash of an OMQ."""
    return _digest("omq", canonical_omq(omq).text)


def hash_instance(instance) -> str:
    """Stable content hash of an instance (null-renaming invariant)."""
    return _digest("inst", canonical_instance(instance).text)
