"""A crash-isolated, persistent multiprocessing worker pool.

``multiprocessing.Pool`` is the obvious tool and the wrong one: a worker
that segfaults or is OOM-killed poisons the whole pool (tasks hang
forever), and there is no per-task timeout.  Containment checks are
2EXPTIME-worst-case (Table 1 of the paper), so both failure modes are
expected in production, not exceptional.  This pool therefore manages its
workers directly:

* one duplex pipe per worker; the coordinator assigns one task at a time
  and waits on the busy pipes with :func:`multiprocessing.connection.wait`
  (a dead worker closes its pipe end, which wakes the wait — crash
  detection costs no polling);
* a task that exceeds ``task_timeout`` gets its worker terminated and a
  :class:`TaskOutcome` failure; the worker is respawned and the rest of
  the work is unaffected;
* a worker that dies mid-task (any exit, including ``SIGKILL``) likewise
  fails only its own task;
* ``workers=1`` executes tasks serially in-process — no subprocesses, no
  timeout enforcement — which is also the debuggable path.

The pool is *persistent*: :meth:`WorkerPool.submit` injects a task and
returns a :class:`PoolTicket` immediately; a coordinator thread (lazily
started, one per pool) dispatches tasks to long-lived workers and
completes tickets as results arrive.  A submission made while earlier
tasks are still running reuses the warm workers instead of paying a
spawn per batch.  :meth:`WorkerPool.run` is the one-shot convenience:
submit everything, drain in input order, then let the workers retire once
the pool is idle (so bare ``run()`` callers do not leak processes).

The pool schedules *jobs* in the :mod:`repro.engine.jobs` sense: picklable
objects with a ``run()`` method.  It knows nothing about caching or
verdicts; the engine maps failures onto per-kind results.
"""

from __future__ import annotations

import itertools
import multiprocessing as mp
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Deque, Dict, List, Optional, Sequence

#: Failure string for tasks cancelled before dispatch.
CANCELLED = "cancelled"

#: Failure string for tasks abandoned by :meth:`WorkerPool.close`.
POOL_CLOSED = "pool closed"


@dataclass
class TaskOutcome:
    """What happened to one task: a value or a failure reason."""

    value: Any = None
    failure: Optional[str] = None
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.failure is None


def _worker_main(conn) -> None:  # pragma: no cover - runs in a subprocess
    """Worker loop: receive ``(seq, task)``, run it, send the outcome back."""
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            seq, task = msg
            start = time.perf_counter()
            try:
                value = task.run()
                outcome = (seq, "ok", value, time.perf_counter() - start)
            except BaseException as exc:
                outcome = (
                    seq,
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    time.perf_counter() - start,
                )
            try:
                conn.send(outcome)
            except Exception:
                try:
                    conn.send(
                        (
                            seq,
                            "error",
                            "worker result was not picklable",
                            time.perf_counter() - start,
                        )
                    )
                except Exception:
                    break
    except (EOFError, OSError, KeyboardInterrupt):
        pass


class _Worker:
    __slots__ = ("proc", "conn", "task_seq", "deadline")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.task_seq: Optional[int] = None
        self.deadline: Optional[float] = None


class PoolTicket:
    """A handle for one submitted task; completed exactly once."""

    __slots__ = ("seq", "task", "outcome", "_event", "_lock", "_callbacks")

    def __init__(self, seq: int, task: Any) -> None:
        self.seq = seq
        self.task = task
        self.outcome: Optional[TaskOutcome] = None
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._callbacks: List[Callable[["PoolTicket"], None]] = []

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout: Optional[float] = None) -> TaskOutcome:
        """Block until the outcome is available (or ``TimeoutError``)."""
        if not self._event.wait(timeout):
            raise TimeoutError(f"task {self.seq} not done after {timeout}s")
        assert self.outcome is not None
        return self.outcome

    def add_done_callback(
        self, callback: Callable[["PoolTicket"], None]
    ) -> None:
        """Run *callback(ticket)* on completion (immediately if done).

        Callbacks fire on whichever thread completes the ticket — keep
        them short and never let them block on pool internals.
        """
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)

    # -- internal ---------------------------------------------------------

    def _complete(self, outcome: TaskOutcome) -> bool:
        with self._lock:
            if self._event.is_set():
                return False
            self.outcome = outcome
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except Exception:  # callbacks must never sink the coordinator
                pass
        return True


class WorkerPool:
    """Run picklable tasks across worker processes, tolerating failures."""

    #: How often an idle-crashed worker may bounce a task back before the
    #: task itself is failed.
    MAX_REQUEUES = 3

    def __init__(
        self,
        workers: int = 1,
        task_timeout: Optional[float] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.task_timeout = task_timeout
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)
        self._cond = threading.Condition()
        self._pending: Deque[PoolTicket] = deque()
        self._seq = itertools.count()
        self._thread: Optional[threading.Thread] = None
        self._closed = False
        self._stop_when_idle = False
        # Self-pipe: wakes a coordinator blocked in connection.wait when a
        # submit/cancel/close happens.  Created with the coordinator.
        self._wake_r = None
        self._wake_w = None

    # -- serial fallback --------------------------------------------------

    @staticmethod
    def _execute_inline(task: Any, reraise_interrupt: bool) -> TaskOutcome:
        """Run *task* in this process with the workers' failure semantics.

        Workers catch ``BaseException`` (a job calling ``sys.exit`` fails
        its task, not the batch); the inline path must agree, with the one
        exception that a ``KeyboardInterrupt`` on the calling thread keeps
        propagating so Ctrl-C still works.
        """
        start = time.perf_counter()
        try:
            value = task.run()
        except KeyboardInterrupt:
            if reraise_interrupt:
                raise
            return TaskOutcome(
                failure="KeyboardInterrupt: ",
                duration=time.perf_counter() - start,
            )
        except BaseException as exc:
            return TaskOutcome(
                failure=f"{type(exc).__name__}: {exc}",
                duration=time.perf_counter() - start,
            )
        return TaskOutcome(value=value, duration=time.perf_counter() - start)

    def _run_serial(self, tasks: Sequence[Any]) -> List[TaskOutcome]:
        return [self._execute_inline(t, reraise_interrupt=True) for t in tasks]

    # -- submission API ---------------------------------------------------

    def submit(self, task: Any) -> PoolTicket:
        """Enqueue *task* without blocking; returns its ticket.

        The coordinator thread (and, for ``workers > 1``, the worker
        processes) start lazily on first use and stay warm for later
        submissions until :meth:`close`.
        """
        with self._cond:
            if self._closed:
                raise RuntimeError("pool is closed")
            ticket = PoolTicket(next(self._seq), task)
            self._pending.append(ticket)
            self._ensure_coordinator()
            self._cond.notify_all()
        self._signal()
        return ticket

    def cancel(self, ticket: PoolTicket) -> bool:
        """Cancel *ticket* if it has not been dispatched to a worker yet."""
        with self._cond:
            try:
                self._pending.remove(ticket)
            except ValueError:
                return False
        ticket._complete(TaskOutcome(failure=CANCELLED))
        return True

    def run(self, tasks: Sequence[Any]) -> List[TaskOutcome]:
        """Run all tasks; outcomes are returned in input order.

        ``workers == 1`` executes inline (deterministic, no processes).
        With ``workers > 1`` every multi-task batch — and any single-task
        batch with a ``task_timeout`` — goes through the worker pool, so
        timeouts and crash isolation hold even for a batch of one; a
        single task with no timeout keeps the cheap inline path.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        if self.workers == 1 or (
            len(tasks) == 1 and self.task_timeout is None
        ):
            return self._run_serial(tasks)
        tickets = [self.submit(task) for task in tasks]
        try:
            outcomes = [t.wait() for t in tickets]
        finally:
            self._request_stop_when_idle()
        return outcomes

    def close(self, join_timeout: float = 5.0) -> None:
        """Shut down: fail unfinished tickets, terminate the workers."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
            self._cond.notify_all()
        self._signal()
        if thread is not None:
            thread.join(timeout=join_timeout)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- coordination internals -------------------------------------------

    def _ensure_coordinator(self) -> None:
        # Caller holds self._cond.
        if self._thread is not None and self._thread.is_alive():
            return
        if self.workers > 1 and self._wake_r is None:
            self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
        target = (
            self._serial_loop if self.workers == 1 else self._coordinate
        )
        self._thread = threading.Thread(
            target=target, daemon=True, name="repro-pool-coordinator"
        )
        self._thread.start()

    def _request_stop_when_idle(self) -> None:
        """Retire the workers once nothing is pending or running.

        This keeps bare ``run()`` callers from leaking processes while
        letting concurrent ``submit()`` streams keep the pool warm: the
        coordinator only acts on the flag at a fully idle instant, and the
        next submission simply starts a fresh coordinator.
        """
        with self._cond:
            if self._closed:
                return
            self._stop_when_idle = True
            self._cond.notify_all()
        self._signal()

    def _signal(self) -> None:
        w = self._wake_w
        if w is None:
            return
        try:
            w.send(b"w")
        except Exception:
            pass

    def _drain_wakeups(self) -> None:
        r = self._wake_r
        try:
            while r.poll(0):
                r.recv()
        except (EOFError, OSError):
            pass

    # -- serial coordinator (workers == 1) --------------------------------

    def _serial_loop(self) -> None:
        while True:
            with self._cond:
                while not self._pending and not self._closed:
                    if self._stop_when_idle:
                        self._stop_when_idle = False
                        self._thread = None
                        return
                    self._cond.wait()
                if self._closed:
                    doomed = list(self._pending)
                    self._pending.clear()
                    self._thread = None
                    break
                ticket = self._pending.popleft()
            ticket._complete(
                self._execute_inline(ticket.task, reraise_interrupt=False)
            )
        for ticket in doomed:
            ticket._complete(TaskOutcome(failure=POOL_CLOSED))

    # -- parallel coordinator (workers > 1) --------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    @staticmethod
    def _retire(worker: _Worker, graceful: bool = True) -> None:
        try:
            if graceful and worker.proc.is_alive():
                worker.conn.send(None)
        except Exception:
            pass
        try:
            worker.conn.close()
        except Exception:
            pass
        worker.proc.join(timeout=0.5)
        if worker.proc.is_alive():
            worker.proc.terminate()
            worker.proc.join(timeout=0.5)
        if worker.proc.is_alive():  # pragma: no cover - stuck in a syscall
            worker.proc.kill()
            worker.proc.join(timeout=0.5)

    def _coordinate(self) -> None:
        workers: List[_Worker] = []
        running: Dict[int, PoolTicket] = {}
        requeues: Dict[int, int] = {}
        doomed: List[PoolTicket] = []
        try:
            while True:
                # -- exit conditions ----------------------------------
                with self._cond:
                    if self._closed:
                        doomed = list(self._pending)
                        self._pending.clear()
                        self._thread = None
                        doomed.extend(running.values())
                        running.clear()
                        return
                    if (
                        self._stop_when_idle
                        and not self._pending
                        and not running
                    ):
                        self._stop_when_idle = False
                        self._thread = None
                        return

                # -- assign pending tasks to idle workers --------------
                while True:
                    with self._cond:
                        if not self._pending:
                            break
                        idle = next(
                            (w for w in workers if w.task_seq is None), None
                        )
                        if idle is None and len(workers) >= self.workers:
                            break
                        ticket = self._pending.popleft()
                    if idle is None:
                        idle = self._spawn()
                        workers.append(idle)
                    try:
                        idle.conn.send((ticket.seq, ticket.task))
                    except OSError:
                        # The worker died while idle: replace it and retry
                        # the task elsewhere (bounded, in case spawning is
                        # itself broken).
                        workers.remove(idle)
                        self._retire(idle, graceful=False)
                        n = requeues[ticket.seq] = (
                            requeues.get(ticket.seq, 0) + 1
                        )
                        if n > self.MAX_REQUEUES:
                            ticket._complete(
                                TaskOutcome(
                                    failure="worker died before task start"
                                )
                            )
                        else:
                            with self._cond:
                                self._pending.appendleft(ticket)
                        continue
                    except Exception as exc:
                        ticket._complete(
                            TaskOutcome(failure=f"task not picklable: {exc}")
                        )
                        continue
                    idle.task_seq = ticket.seq
                    idle.deadline = (
                        time.monotonic() + self.task_timeout
                        if self.task_timeout
                        else None
                    )
                    running[ticket.seq] = ticket

                # -- wait for results, wakeups, or deadlines -----------
                busy = [w for w in workers if w.task_seq is not None]
                deadlines = [
                    w.deadline for w in busy if w.deadline is not None
                ]
                wait_timeout: Optional[float] = None
                if deadlines:
                    wait_timeout = max(
                        0.0, min(deadlines) - time.monotonic()
                    )
                ready = mp_connection.wait(
                    [self._wake_r] + [w.conn for w in busy],
                    timeout=wait_timeout,
                )
                by_conn = {w.conn: w for w in busy}
                for conn in ready:
                    if conn is self._wake_r:
                        self._drain_wakeups()
                        continue
                    w = by_conn[conn]
                    try:
                        seq, status, payload, duration = conn.recv()
                    except (EOFError, OSError):
                        seq = w.task_seq
                        w.proc.join(timeout=0.5)
                        code = w.proc.exitcode
                        ticket = running.pop(seq, None)
                        if ticket is not None:
                            ticket._complete(
                                TaskOutcome(
                                    failure=(
                                        f"worker crashed (exit code {code})"
                                    )
                                )
                            )
                        workers.remove(w)
                        self._retire(w, graceful=False)
                        continue
                    ticket = running.pop(seq, None)
                    if ticket is not None:
                        if status == "ok":
                            ticket._complete(
                                TaskOutcome(value=payload, duration=duration)
                            )
                        else:
                            ticket._complete(
                                TaskOutcome(
                                    failure=payload, duration=duration
                                )
                            )
                    w.task_seq = None
                    w.deadline = None

                # -- enforce per-task deadlines ------------------------
                now = time.monotonic()
                for w in list(workers):
                    if (
                        w.task_seq is None
                        or w.deadline is None
                        or now < w.deadline
                    ):
                        continue
                    ticket = running.pop(w.task_seq, None)
                    if ticket is not None:
                        ticket._complete(
                            TaskOutcome(
                                failure=(
                                    f"timed out after {self.task_timeout}s"
                                )
                            )
                        )
                    workers.remove(w)
                    self._retire(w, graceful=False)
        finally:
            for w in workers:
                self._retire(w)
            for ticket in doomed:
                ticket._complete(TaskOutcome(failure=POOL_CLOSED))
