"""A crash-isolated multiprocessing worker pool with per-task timeouts.

``multiprocessing.Pool`` is the obvious tool and the wrong one: a worker
that segfaults or is OOM-killed poisons the whole pool (tasks hang
forever), and there is no per-task timeout.  Containment checks are
2EXPTIME-worst-case (Table 1 of the paper), so both failure modes are
expected in production, not exceptional.  This pool therefore manages its
workers directly:

* one duplex pipe per worker; the coordinator assigns one task at a time
  and waits on the busy pipes with :func:`multiprocessing.connection.wait`
  (a dead worker closes its pipe end, which wakes the wait — crash
  detection costs no polling);
* a task that exceeds ``task_timeout`` gets its worker terminated and a
  :class:`TaskOutcome` failure; the worker is respawned and the rest of
  the batch is unaffected;
* a worker that dies mid-task (any exit, including ``SIGKILL``) likewise
  fails only its own task;
* results always come back in input order;
* ``workers=1`` runs every task inline, serially and deterministically —
  no subprocesses, no timeout enforcement — which is also the debuggable
  path.

The pool schedules *jobs* in the :mod:`repro.engine.jobs` sense: picklable
objects with a ``run()`` method.  It knows nothing about caching or
verdicts; the engine maps failures onto per-kind results.
"""

from __future__ import annotations

import multiprocessing as mp
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Dict, List, Optional, Sequence


@dataclass
class TaskOutcome:
    """What happened to one task: a value or a failure reason."""

    value: Any = None
    failure: Optional[str] = None
    duration: float = 0.0

    @property
    def ok(self) -> bool:
        return self.failure is None


def _worker_main(conn) -> None:  # pragma: no cover - runs in a subprocess
    """Worker loop: receive ``(idx, task)``, run it, send the outcome back."""
    try:
        while True:
            msg = conn.recv()
            if msg is None:
                break
            idx, task = msg
            start = time.perf_counter()
            try:
                value = task.run()
                outcome = (idx, "ok", value, time.perf_counter() - start)
            except BaseException as exc:
                outcome = (
                    idx,
                    "error",
                    f"{type(exc).__name__}: {exc}",
                    time.perf_counter() - start,
                )
            try:
                conn.send(outcome)
            except Exception:
                try:
                    conn.send(
                        (
                            idx,
                            "error",
                            "worker result was not picklable",
                            time.perf_counter() - start,
                        )
                    )
                except Exception:
                    break
    except (EOFError, OSError, KeyboardInterrupt):
        pass


class _Worker:
    __slots__ = ("proc", "conn", "task_idx", "deadline")

    def __init__(self, proc, conn) -> None:
        self.proc = proc
        self.conn = conn
        self.task_idx: Optional[int] = None
        self.deadline: Optional[float] = None


class WorkerPool:
    """Run picklable tasks across worker processes, tolerating failures."""

    #: How often an idle-crashed worker may bounce a task back before the
    #: task itself is failed.
    MAX_REQUEUES = 3

    def __init__(
        self,
        workers: int = 1,
        task_timeout: Optional[float] = None,
        start_method: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.task_timeout = task_timeout
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._ctx = mp.get_context(start_method)

    # -- serial fallback --------------------------------------------------

    def _run_serial(self, tasks: Sequence[Any]) -> List[TaskOutcome]:
        out: List[TaskOutcome] = []
        for task in tasks:
            start = time.perf_counter()
            try:
                value = task.run()
            except Exception as exc:
                out.append(
                    TaskOutcome(
                        failure=f"{type(exc).__name__}: {exc}",
                        duration=time.perf_counter() - start,
                    )
                )
            else:
                out.append(
                    TaskOutcome(
                        value=value, duration=time.perf_counter() - start
                    )
                )
        return out

    # -- parallel path ----------------------------------------------------

    def _spawn(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        proc = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True
        )
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn)

    @staticmethod
    def _retire(worker: _Worker, graceful: bool = True) -> None:
        try:
            if graceful and worker.proc.is_alive():
                worker.conn.send(None)
        except Exception:
            pass
        try:
            worker.conn.close()
        except Exception:
            pass
        worker.proc.join(timeout=0.5)
        if worker.proc.is_alive():
            worker.proc.terminate()
            worker.proc.join(timeout=0.5)
        if worker.proc.is_alive():  # pragma: no cover - stuck in a syscall
            worker.proc.kill()
            worker.proc.join(timeout=0.5)

    def run(self, tasks: Sequence[Any]) -> List[TaskOutcome]:
        """Run all tasks; outcomes are returned in input order."""
        tasks = list(tasks)
        if not tasks:
            return []
        if self.workers == 1 or len(tasks) == 1:
            return self._run_serial(tasks)

        results: List[Optional[TaskOutcome]] = [None] * len(tasks)
        pending = deque(range(len(tasks)))
        requeues: Dict[int, int] = {}
        completed = 0
        workers = [
            self._spawn() for _ in range(min(self.workers, len(tasks)))
        ]
        try:
            while completed < len(tasks):
                # Assign pending tasks to idle workers.
                for w in list(workers):
                    if w.task_idx is not None or not pending:
                        continue
                    idx = pending.popleft()
                    try:
                        w.conn.send((idx, tasks[idx]))
                    except OSError:
                        # The worker died while idle: replace it and retry
                        # the task elsewhere (bounded, in case spawning is
                        # itself broken).
                        workers.remove(w)
                        self._retire(w, graceful=False)
                        requeues[idx] = requeues.get(idx, 0) + 1
                        if requeues[idx] > self.MAX_REQUEUES:
                            results[idx] = TaskOutcome(
                                failure="worker died before task start"
                            )
                            completed += 1
                        else:
                            pending.appendleft(idx)
                            workers.append(self._spawn())
                        continue
                    except Exception as exc:
                        results[idx] = TaskOutcome(
                            failure=f"task not picklable: {exc}"
                        )
                        completed += 1
                        continue
                    w.task_idx = idx
                    w.deadline = (
                        time.monotonic() + self.task_timeout
                        if self.task_timeout
                        else None
                    )

                busy = [w for w in workers if w.task_idx is not None]
                if not busy:
                    if pending:
                        continue
                    break

                deadlines = [
                    w.deadline for w in busy if w.deadline is not None
                ]
                wait_timeout: Optional[float] = None
                if deadlines:
                    wait_timeout = max(
                        0.0, min(deadlines) - time.monotonic()
                    )
                ready = mp_connection.wait(
                    [w.conn for w in busy], timeout=wait_timeout
                )
                by_conn = {w.conn: w for w in busy}
                for conn in ready:
                    w = by_conn[conn]
                    try:
                        idx, status, payload, duration = conn.recv()
                    except (EOFError, OSError):
                        idx = w.task_idx
                        w.proc.join(timeout=0.5)
                        code = w.proc.exitcode
                        results[idx] = TaskOutcome(
                            failure=f"worker crashed (exit code {code})"
                        )
                        completed += 1
                        workers.remove(w)
                        self._retire(w, graceful=False)
                        if pending:
                            workers.append(self._spawn())
                        continue
                    if status == "ok":
                        results[idx] = TaskOutcome(
                            value=payload, duration=duration
                        )
                    else:
                        results[idx] = TaskOutcome(
                            failure=payload, duration=duration
                        )
                    completed += 1
                    w.task_idx = None
                    w.deadline = None

                # Enforce per-task deadlines on workers that stayed silent.
                now = time.monotonic()
                for w in list(workers):
                    if (
                        w.task_idx is None
                        or w.deadline is None
                        or now < w.deadline
                    ):
                        continue
                    idx = w.task_idx
                    results[idx] = TaskOutcome(
                        failure=(
                            f"timed out after {self.task_timeout}s"
                        )
                    )
                    completed += 1
                    workers.remove(w)
                    self._retire(w, graceful=False)
                    if pending:
                        workers.append(self._spawn())
        finally:
            for w in workers:
                self._retire(w)

        # Every slot is filled by construction; the assert documents it.
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]
