"""A process-wide registry of clearable caches.

The library memoizes aggressively (the ``lru_cache``s of
:mod:`repro.evaluation`, the in-memory layer of every
:class:`repro.engine.cache.ResultCache`), which is exactly right for a
long-lived service and exactly wrong for test isolation.  This module is
the one place that knows about all of them: cache owners register a
clear-callback under a stable name, and :func:`clear_caches` (re-exported
as ``repro.clear_caches``) empties everything in one call.

The module deliberately imports nothing from the rest of the package so
that any module — including :mod:`repro.evaluation`, which the engine
itself depends on — can register here without creating an import cycle.
Instance-owned caches register through :func:`register_instance_cache`,
which holds only a weak reference so registration never extends a cache's
lifetime.
"""

from __future__ import annotations

import weakref
from threading import RLock
from typing import Callable, Dict

_lock = RLock()
_registry: Dict[str, Callable[[], None]] = {}
_instance_counter = 0


def register_cache(name: str, clear: Callable[[], None]) -> None:
    """Register a module-level cache under *name* (idempotent on re-import)."""
    with _lock:
        _registry[name] = clear


def register_instance_cache(name: str, owner: object, method_name: str) -> str:
    """Register ``getattr(owner, method_name)()`` as a clearer, weakly.

    Returns the unique registry key.  The entry drops out automatically
    when *owner* is garbage-collected.
    """
    global _instance_counter
    with _lock:
        _instance_counter += 1
        key = f"{name}#{_instance_counter}"

    def _finalize(k=key):
        with _lock:
            _registry.pop(k, None)

    ref = weakref.ref(owner, lambda _: _finalize())

    def _clear():
        target = ref()
        if target is not None:
            getattr(target, method_name)()

    with _lock:
        _registry[key] = _clear
    return key


def unregister_cache(name: str) -> None:
    """Remove a registration; missing names are ignored."""
    with _lock:
        _registry.pop(name, None)


def registered_caches() -> tuple:
    """The currently registered cache names (sorted, for introspection)."""
    with _lock:
        return tuple(sorted(_registry))


def clear_caches() -> int:
    """Clear every registered cache; returns how many were cleared."""
    with _lock:
        clearers = list(_registry.values())
    for clear in clearers:
        clear()
    return len(clearers)
