"""Async job scheduling with canonical deduplication.

The batch engine's ``run_batch`` answers "run these N jobs and wait";
this module is the service-shaped layer underneath it and beside it:
:meth:`Scheduler.submit` enqueues one job *without blocking* and returns
a :class:`JobHandle` that resolves when the job's result exists — from
the cache, from a worker, or from somebody else's identical in-flight
computation.

The last case is the point.  Real OMQ catalogs are full of α-equivalent
queries (renamed variables, reordered atoms/rules — the symmetries the
semantics ignores), and a containment check is 2EXPTIME-worst-case, so
computing the same answer twice because two callers spelled the same OMQ
differently is the most expensive no-op in the system.  Before dispatch,
every cacheable job is keyed by its canonical cache key
(:mod:`repro.engine.canon` hashes plus procedure parameters); a submission
whose key matches an in-flight computation *coalesces* onto it — no new
pool task — and every attached handle resolves from the single outcome.

Accounting (all visible in ``BatchEngine.stats()`` / ``repro batch
--json``):

* ``engine.scheduler.submitted`` / ``.dispatched`` / ``.completed`` /
  ``.cancelled`` — handle lifecycle counters;
* ``engine.scheduler.inflight`` — gauge of currently scheduled flights
  (with its high-water mark);
* ``engine.dedup.coalesced`` — submissions that were absorbed by an
  existing flight (or, in ``BatchEngine.submit_batch``, by an earlier
  α-equivalent job in the same batch).

Thread model: ``submit``/``cancel`` may be called from any thread; handle
resolution runs on the pool's coordinator thread via ticket callbacks.
The scheduler's lock is reentrant because a cancellation that empties a
flight completes the pool ticket synchronously, which re-enters the
completion path on the same thread.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Any, Iterable, Iterator, List, Optional

from .cache import ResultCache
from .jobs import JobResult
from .metrics import MetricsRegistry
from .pool import CANCELLED, PoolTicket, WorkerPool
from ..obs import TraceConfig, TracedOutcome, TracedTask


class JobHandle:
    """One submitted job's future result.

    ``done()`` never blocks; ``result(timeout)`` blocks until the handle
    resolves (raising ``TimeoutError`` on expiry); ``cancel()`` resolves
    the handle with a ``"cancelled"`` error if the computation has not
    produced a value for it yet — and releases the underlying pool task
    when this was the last handle interested in it.
    """

    __slots__ = ("job", "key", "_scheduler", "_flight", "_event", "_result",
                 "_lock", "_callbacks")

    def __init__(
        self, job: Any, key: Optional[str], scheduler: "Scheduler"
    ) -> None:
        self.job = job
        self.key = key
        self._scheduler = scheduler
        self._flight: Optional[_Flight] = None
        self._event = threading.Event()
        self._result: Optional[JobResult] = None
        self._lock = threading.Lock()
        self._callbacks: List[Any] = []

    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> JobResult:
        if not self._event.wait(timeout):
            raise TimeoutError(f"job not done after {timeout}s")
        assert self._result is not None
        return self._result

    def cancel(self) -> bool:
        return self._scheduler._cancel(self)

    # -- internal ---------------------------------------------------------

    def _resolve(self, result: JobResult) -> bool:
        with self._lock:
            if self._event.is_set():
                return False
            self._result = result
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except Exception:
                pass
        return True

    def _add_done_callback(self, callback) -> None:
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)


class _Flight:
    """One scheduled computation and every handle riding on it."""

    __slots__ = ("key", "handles", "ticket")

    def __init__(self, key: Optional[str], handle: JobHandle) -> None:
        self.key = key
        self.handles: List[JobHandle] = [handle]
        self.ticket: Optional[PoolTicket] = None


class Scheduler:
    """Dedup-aware async submission over a :class:`WorkerPool`.

    Owns no workers and no storage — it composes the pool, the result
    cache, and the metrics registry handed to it (all shared with the
    :class:`~repro.engine.engine.BatchEngine` façade).
    """

    def __init__(
        self,
        pool: WorkerPool,
        cache: ResultCache,
        metrics: Optional[MetricsRegistry] = None,
        trace_config: Optional[TraceConfig] = None,
        trace_sink: Optional[List[dict]] = None,
    ) -> None:
        self.pool = pool
        self.cache = cache
        self.metrics = metrics or MetricsRegistry()
        # With a trace config, every dispatched job is wrapped in a
        # TracedTask: the config ships to the worker, the completed span
        # tree rides back inside the result payload, and completed trees
        # land in *trace_sink* (the BatchEngine's list) on unwrap.
        self.trace_config = (
            trace_config
            if trace_config is None or trace_config.mode != "off"
            else None
        )
        self.trace_sink = trace_sink
        self._lock = threading.RLock()
        self._inflight: dict = {}

    # -- submission -------------------------------------------------------

    def submit(self, job: Any) -> JobHandle:
        """Enqueue *job*; returns immediately with its handle.

        Resolution order: result cache (α-equivalent inputs hit), then
        coalescing onto an in-flight computation with the same canonical
        key, then dispatch to the pool.
        """
        self.metrics.counter("engine.scheduler.submitted").inc()
        key = job.cache_key()
        handle = JobHandle(job, key, self)
        if key is not None:
            found, value = self.cache.get(key)
            if found:
                self.metrics.counter(f"engine.{job.kind}.cache_hits").inc()
                handle._resolve(JobResult(job, value, cached=True))
                self.metrics.counter("engine.scheduler.completed").inc()
                return handle
            with self._lock:
                flight = self._inflight.get(key)
                if flight is not None:
                    handle._flight = flight
                    flight.handles.append(handle)
                    self.metrics.counter("engine.dedup.coalesced").inc()
                    return handle
                flight = _Flight(key, handle)
                handle._flight = flight
                self._inflight[key] = flight
        else:
            flight = _Flight(None, handle)
            handle._flight = flight
        self.metrics.gauge("engine.scheduler.inflight").add()
        task: Any = job
        if self.trace_config is not None:
            task = TracedTask(job, self.trace_config, time.time())
        ticket = self.pool.submit(task)
        flight.ticket = ticket
        self.metrics.counter("engine.scheduler.dispatched").inc()
        ticket.add_done_callback(
            lambda t, flight=flight: self._on_ticket_done(flight, t)
        )
        return handle

    def attach(self, primary: JobHandle, job: Any) -> JobHandle:
        """A handle for *job* that rides on *primary*'s computation.

        Used by ``BatchEngine.submit_batch`` to coalesce α-equivalent
        duplicates *within* one batch deterministically (the in-flight
        map alone cannot promise a coalesce — with a fast worker the
        first copy may already have finished and turned into a plain
        cache hit by the time the second is submitted).
        """
        handle = JobHandle(job, primary.key, self)
        self.metrics.counter("engine.scheduler.submitted").inc()
        self.metrics.counter("engine.dedup.coalesced").inc()

        def _forward(done: JobHandle) -> None:
            r = done._result
            assert r is not None
            if handle._resolve(
                JobResult(
                    job,
                    r.value if r.ok else job.failure_result(r.error),
                    cached=r.cached,
                    error=r.error,
                    duration=r.duration,
                    coalesced=True,
                    trace=r.trace,
                )
            ):
                self.metrics.counter("engine.scheduler.completed").inc()

        primary._add_done_callback(_forward)
        return handle

    # -- streaming --------------------------------------------------------

    def as_completed(
        self,
        handles: Iterable[JobHandle],
        timeout: Optional[float] = None,
    ) -> Iterator[JobHandle]:
        """Yield handles as they resolve, soonest first.

        Unlike draining ``result()`` in input order, the caller sees each
        outcome the moment a worker produces it.  ``timeout`` bounds the
        *total* wait; expiry raises ``TimeoutError`` with the stragglers
        still pending.
        """
        handles = list(handles)
        done_queue: "queue.Queue[JobHandle]" = queue.Queue()
        for h in handles:
            h._add_done_callback(done_queue.put)
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        for _ in range(len(handles)):
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                yield done_queue.get(timeout=remaining)
            except queue.Empty:
                raise TimeoutError(
                    f"batch not done after {timeout}s"
                ) from None

    # -- cancellation -----------------------------------------------------

    def _cancel(self, handle: JobHandle) -> bool:
        with self._lock:
            if handle.done():
                return False
            job = handle.job
            resolved = handle._resolve(
                JobResult(
                    job,
                    job.failure_result(CANCELLED),
                    error=CANCELLED,
                )
            )
            if not resolved:
                return False
            self.metrics.counter("engine.scheduler.cancelled").inc()
            flight = handle._flight
            if flight is not None and all(h.done() for h in flight.handles):
                # Nobody is waiting any more: release the pool slot if the
                # task has not started (completing the ticket re-enters
                # _on_ticket_done on this thread — the RLock allows it).
                if flight.ticket is not None:
                    self.pool.cancel(flight.ticket)
        return True

    # -- completion (runs on the pool's coordinator thread) ---------------

    def _on_ticket_done(self, flight: _Flight, ticket: PoolTicket) -> None:
        outcome = ticket.outcome
        assert outcome is not None
        job = flight.handles[0].job
        cancelled = outcome.failure == CANCELLED
        # Traced tasks bundle the span tree with the value; unwrap before
        # caching so the cache stores plain values, and bank the tree.
        value = outcome.value
        trace: Optional[dict] = None
        if isinstance(value, TracedOutcome):
            trace = value.trace
            value = value.value
            if trace is not None and self.trace_sink is not None:
                self.trace_sink.append(trace)
        if not cancelled:
            self.metrics.counter(f"engine.{job.kind}.runs").inc()
            self.metrics.timer(f"engine.{job.kind}.time").observe(
                outcome.duration
            )
            if outcome.ok:
                if flight.key is not None:
                    self.cache.put(flight.key, value)
            else:
                self.metrics.counter(f"engine.{job.kind}.failures").inc()
        # The cache now holds the value (if any), so a submit that races
        # the pop below lands on a cache hit rather than a recompute.
        with self._lock:
            if flight.key is not None:
                self._inflight.pop(flight.key, None)
            handles = list(flight.handles)
        self.metrics.gauge("engine.scheduler.inflight").sub()
        for i, h in enumerate(handles):
            if h.done():  # individually cancelled earlier
                continue
            if outcome.ok:
                result = JobResult(
                    h.job,
                    value,
                    duration=outcome.duration,
                    coalesced=i > 0,
                    trace=trace,
                )
            else:
                result = JobResult(
                    h.job,
                    h.job.failure_result(outcome.failure),
                    error=outcome.failure,
                    duration=outcome.duration,
                    coalesced=i > 0,
                    trace=trace,
                )
            if h._resolve(result):
                self.metrics.counter("engine.scheduler.completed").inc()
