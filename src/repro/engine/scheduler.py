"""Async job scheduling: canonical dedup, priorities, fair share, catalog.

The batch engine's ``run_batch`` answers "run these N jobs and wait";
this module is the service-shaped layer underneath it and beside it:
:meth:`Scheduler.submit` enqueues one job *without blocking* and returns
a :class:`JobHandle` that resolves when the job's result exists — from
the catalog, from the cache, from a worker, or from somebody else's
identical in-flight computation.

**Dedup** is the original point.  Real OMQ catalogs are full of
α-equivalent queries (renamed variables, reordered atoms/rules — the
symmetries the semantics ignores), and a containment check is
2EXPTIME-worst-case, so computing the same answer twice because two
callers spelled the same OMQ differently is the most expensive no-op in
the system.  Before dispatch, every cacheable job is keyed by its
canonical cache key (:mod:`repro.engine.canon` hashes plus procedure
parameters); a submission whose key matches an in-flight computation
*coalesces* onto it — no new pool task — and every attached handle
resolves from the single outcome.

**Priorities and fairness** make the scheduler safe to share.  Flights
wait in a ready queue and at most one pool slot's worth of work per
worker is dispatched at a time (the *dispatch window*), so ordering is
decided here rather than in the pool's FIFO.  Selection ranks flights by

1. *effective priority* — the submitted :class:`Priority` class, aged
   toward ``HIGH`` by one class per *aging_interval* seconds in queue,
   so a saturating high-priority stream cannot starve the backlog;
2. *submitter pass* — stride scheduling over the per-submitter virtual
   "pass" clock: each dispatch charges the winning submitter
   ``1/weight``, so submitters with equal weights alternate and a
   weight-2 submitter gets twice the slots of a weight-1 one
   (:meth:`Scheduler.set_weight`);
3. submission sequence — FIFO among equals, which keeps the default
   single-submitter, single-priority behaviour exactly the old FIFO.

Coalescing interacts with priority: attaching a higher-priority
submission to a queued flight *promotes* the flight (a flight runs at
the most urgent class anyone riding it asked for).  Cancelling the last
handle of a queued flight retires it without ever touching the pool;
cancelling a dispatched flight propagates to the pool ticket as before.

**Catalog** (optional): with an :class:`~repro.engine.catalog.OMQCatalog`
attached, containment jobs are keyed by equivalence-group
representatives (``ContainmentJob.catalog_key``) so proven-equivalent
spellings share cache rows, jobs whose two sides are in one group
short-circuit to CONTAINED without dispatching, and every CONTAINED
verdict the engine produces (fresh or cached) is fed back as a catalog
edge.

Accounting (all visible in ``BatchEngine.stats()`` / ``repro batch
--json``):

* ``engine.scheduler.submitted`` / ``.dispatched`` / ``.completed`` /
  ``.cancelled`` — handle lifecycle counters;
* ``engine.scheduler.inflight`` — gauge of currently scheduled flights
  (with its high-water mark);
* ``engine.scheduler.priority.queued`` — gauge of flights waiting in the
  ready queue; ``engine.scheduler.priority.dispatched.{high,normal,low}``
  — dispatches per effective class; ``engine.scheduler.priority.aged`` —
  dispatches that ran above their submitted class thanks to aging;
  ``engine.scheduler.queue_wait`` — time from submit to dispatch;
* ``engine.dedup.coalesced`` — submissions that were absorbed by an
  existing flight (or, in ``BatchEngine.submit_batch``, by an earlier
  α-equivalent job in the same batch);
* ``engine.scheduler.deadline.degraded`` / ``.expired`` — deadline-policy
  outcomes: submissions refused upfront because the budget could not
  cover a fresh decision, and admitted handles abandoned at expiry
  (:class:`DeadlinePolicy`);
* ``engine.catalog.short_circuits`` / ``.noted`` / ``.merges`` — catalog
  hits, recorded containment facts, and group merges.

Thread model: ``submit``/``cancel`` may be called from any thread; handle
resolution runs on the pool's coordinator thread via ticket callbacks.
The scheduler's lock is reentrant because a cancellation that empties a
flight completes the pool ticket synchronously, which re-enters the
completion path on the same thread.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from dataclasses import dataclass
from enum import IntEnum
from typing import Any, Iterable, Iterator, List, Optional, Tuple, Union

from .cache import ResultCache
from .catalog import OMQCatalog
from .jobs import JobResult
from .witness_store import WitnessStore
from .metrics import LATENCY_BUCKETS, MetricsRegistry
from .pool import CANCELLED, POOL_CLOSED, PoolTicket, WorkerPool
from ..obs import TraceConfig, TracedOutcome, TracedTask, span


class Priority(IntEnum):
    """Dispatch classes; lower value dispatches first."""

    HIGH = 0
    NORMAL = 1
    LOW = 2


def _coerce_priority(value: Union[Priority, int, str]) -> Priority:
    if isinstance(value, Priority):
        return value
    if isinstance(value, str):
        try:
            return Priority[value.upper()]
        except KeyError:
            raise ValueError(
                f"unknown priority {value!r}; choose from "
                f"{', '.join(p.name.lower() for p in Priority)}"
            ) from None
    return Priority(int(value))


#: Failure/`JobResult.error` string for handles abandoned by the deadline
#: policy (refused upfront or expired mid-flight).
DEADLINE = "deadline"


@dataclass(frozen=True)
class DeadlinePolicy:
    """How the scheduler spends a caller's latency budget.

    A submission carrying ``deadline`` (seconds of budget) walks the cheap
    ladder first — catalog equivalence, then the result cache, then
    coalescing onto an identical in-flight computation — all of which are
    (near-)free.  Only when the ladder misses does the policy decide
    whether a *fresh* decision procedure fits the budget:

    * the estimated cost of a fresh run is the per-kind EWMA of observed
      run durations (``ewma_alpha``), but never below ``floor_s`` — the
      paper's procedures are up to 2ExpTime, so a tiny budget can never
      honestly cover a fresh decision no matter how fast recent inputs
      happened to be;
    * a budget below the estimate **degrades immediately**: the handle
      resolves to the job's failure result with reason ``"deadline"``
      without ever occupying a queue slot or pool worker;
    * a budget above the estimate dispatches normally, with a timer that
      abandons the handle (same ``"deadline"`` result) if the computation
      has not produced a value by the deadline.  Co-riders of the flight
      are unaffected; a sole-rider queued flight is retired without the
      pool ever hearing about it.
    """

    floor_s: float = 0.25
    ewma_alpha: float = 0.2


class JobHandle:
    """One submitted job's future result.

    ``done()`` never blocks; ``result(timeout)`` blocks until the handle
    resolves (raising ``TimeoutError`` on expiry); ``cancel()`` resolves
    the handle with a ``"cancelled"`` error if the computation has not
    produced a value for it yet — and releases the underlying pool task
    (or the scheduler's queue slot) when this was the last handle
    interested in it.
    """

    __slots__ = ("job", "key", "_scheduler", "_flight", "_event", "_result",
                 "_lock", "_callbacks", "_primary")

    def __init__(
        self, job: Any, key: Optional[str], scheduler: "Scheduler"
    ) -> None:
        self.job = job
        self.key = key
        self._scheduler = scheduler
        self._flight: Optional[_Flight] = None
        self._event = threading.Event()
        self._result: Optional[JobResult] = None
        self._lock = threading.Lock()
        self._callbacks: List[Any] = []
        self._primary: Optional["JobHandle"] = None

    def done(self) -> bool:
        return self._event.is_set()

    @property
    def coalesced_onto(self) -> Optional["JobHandle"]:
        """The handle whose computation this one rides on, or ``None``.

        Set when a submission coalesces onto an α-equivalent in-flight
        flight (or is attached within a batch): the returned handle is the
        flight's *primary* — the submission that actually got scheduled.
        Cancelling this handle never cancels the primary; a caller that
        wants to report *which* computation keeps running (the serve
        tier's DELETE handler) reads it here.
        """
        return self._primary

    def result(self, timeout: Optional[float] = None) -> JobResult:
        if not self._event.wait(timeout):
            raise TimeoutError(f"job not done after {timeout}s")
        assert self._result is not None
        return self._result

    def cancel(self) -> bool:
        return self._scheduler._cancel(self)

    def add_done_callback(self, callback) -> None:
        """Run ``callback(handle)`` when the handle resolves (now if done).

        Callbacks fire on whichever thread resolves the handle — the pool
        coordinator, a deadline timer, or the canceller — so keep them
        short and non-blocking (the serve tier uses this to hop results
        onto its asyncio loop via ``call_soon_threadsafe``).
        """
        self._add_done_callback(callback)

    # -- internal ---------------------------------------------------------

    def _resolve(self, result: JobResult) -> bool:
        with self._lock:
            if self._event.is_set():
                return False
            self._result = result
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            try:
                callback(self)
            except Exception:
                pass
        return True

    def _add_done_callback(self, callback) -> None:
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(callback)
                return
        callback(self)


class _Flight:
    """One scheduled computation and every handle riding on it."""

    __slots__ = ("key", "handles", "ticket", "priority", "submitter",
                 "enqueued", "seq", "dispatched")

    def __init__(
        self,
        key: Optional[str],
        handle: JobHandle,
        priority: Priority,
        submitter: str,
        seq: int,
    ) -> None:
        self.key = key
        self.handles: List[JobHandle] = [handle]
        self.ticket: Optional[PoolTicket] = None
        self.priority = priority
        self.submitter = submitter
        self.enqueued = time.monotonic()
        self.seq = seq
        self.dispatched = False


class Scheduler:
    """Dedup-aware, priority-aware async submission over a WorkerPool.

    Owns no workers and no storage — it composes the pool, the result
    cache, the optional catalog, and the metrics registry handed to it
    (all shared with the :class:`~repro.engine.engine.BatchEngine`
    façade).

    Parameters
    ----------
    catalog:
        An :class:`~repro.engine.catalog.OMQCatalog`; enables
        group-representative cache keys, equivalence short-circuits, and
        verdict feedback for containment jobs.
    witness_store:
        A :class:`~repro.engine.witness_store.WitnessStore`; containment
        submissions first try to *replay* a stored NOT_CONTAINED witness
        (ahead of the catalog short-circuit), and every fresh or cached
        NOT_CONTAINED verdict deposits its witness for future sessions.
    max_inflight:
        The dispatch window — how many flights may sit in the pool at
        once.  Defaults to the pool's worker count, which keeps every
        worker busy while leaving queue ordering to the scheduler.
    aging_interval:
        Seconds in queue per one-class priority boost (starvation
        guard).  ``None`` or ``0`` disables aging.
    deadline_policy:
        How deadline-carrying submissions are admitted and expired; see
        :class:`DeadlinePolicy`.  Always present (defaults apply when
        ``None`` is passed).
    """

    def __init__(
        self,
        pool: WorkerPool,
        cache: ResultCache,
        metrics: Optional[MetricsRegistry] = None,
        trace_config: Optional[TraceConfig] = None,
        trace_sink: Optional[List[dict]] = None,
        catalog: Optional[OMQCatalog] = None,
        witness_store: Optional[WitnessStore] = None,
        max_inflight: Optional[int] = None,
        aging_interval: Optional[float] = 5.0,
        deadline_policy: Optional[DeadlinePolicy] = None,
    ) -> None:
        self.pool = pool
        self.cache = cache
        self.catalog = catalog
        self.witness_store = witness_store
        self.metrics = metrics or MetricsRegistry()
        # With a trace config, every dispatched job is wrapped in a
        # TracedTask: the config ships to the worker, the completed span
        # tree rides back inside the result payload, and completed trees
        # land in *trace_sink* (the BatchEngine's list) on unwrap.
        self.trace_config = (
            trace_config
            if trace_config is None or trace_config.mode != "off"
            else None
        )
        self.trace_sink = trace_sink
        self.aging_interval = aging_interval
        self._window = (
            max_inflight
            if max_inflight is not None
            else max(1, pool.workers)
        )
        self._lock = threading.RLock()
        self._inflight: dict = {}
        self._queue: List[_Flight] = []
        self._dispatched_now = 0
        self._flight_seq = itertools.count()
        self._pass: dict = {}
        self._weights: dict = {}
        self.deadline_policy = deadline_policy or DeadlinePolicy()
        self._cost_ewma: dict = {}

    # -- fairness configuration -------------------------------------------

    def set_weight(self, submitter: str, weight: float) -> None:
        """Give *submitter* a fair-share *weight* (default 1.0).  Each
        dispatch charges the submitter ``1/weight`` on its pass clock, so
        doubling the weight doubles its share of contended slots."""
        if weight <= 0:
            raise ValueError(f"weight must be positive, got {weight}")
        with self._lock:
            self._weights[submitter] = float(weight)

    # -- submission -------------------------------------------------------

    def effective_key(self, job: Any) -> Optional[str]:
        """*job*'s cache key, with catalog group representatives folded
        in for containment jobs (equivalent spellings share rows)."""
        key = job.cache_key()
        if (
            key is not None
            and self.catalog is not None
            and hasattr(job, "catalog_key")
        ):
            return job.catalog_key(self.catalog.rep)
        return key

    def submit(
        self,
        job: Any,
        *,
        priority: Union[Priority, int, str] = Priority.NORMAL,
        submitter: str = "default",
        deadline: Optional[float] = None,
    ) -> JobHandle:
        """Enqueue *job*; returns immediately with its handle.

        Resolution order: catalog equivalence short-circuit, result
        cache (α-equivalent inputs hit), coalescing onto an in-flight
        computation with the same canonical key, then the priority queue
        and the pool.

        *deadline* is a latency budget in seconds.  The cheap rungs above
        always run; a fresh dispatch is admitted only when the budget
        covers the estimated cost of a full decision procedure, and an
        admitted-but-unlucky handle is abandoned with reason
        ``"deadline"`` when the budget runs out (see
        :class:`DeadlinePolicy`).
        """
        priority = _coerce_priority(priority)
        self.metrics.counter("engine.scheduler.submitted").inc()
        if self.witness_store is not None:
            shortcut = self._witness_shortcut(job)
            if shortcut is not None:
                return shortcut
        if self.catalog is not None:
            shortcut = self._catalog_shortcut(job)
            if shortcut is not None:
                return shortcut
        key = self.effective_key(job)
        handle = JobHandle(job, key, self)
        if key is not None:
            found, value = self.cache.get(key)
            if found:
                self.metrics.counter(f"engine.{job.kind}.cache_hits").inc()
                self._note_verdict(job, value)
                handle._resolve(JobResult(job, value, cached=True))
                self.metrics.counter("engine.scheduler.completed").inc()
                return handle
        coalesced = False
        degraded = False
        with self._lock:
            if key is not None:
                flight = self._inflight.get(key)
                if flight is not None:
                    handle._flight = flight
                    handle._primary = flight.handles[0]
                    flight.handles.append(handle)
                    self.metrics.counter("engine.dedup.coalesced").inc()
                    if priority < flight.priority and not flight.dispatched:
                        # A flight runs at the most urgent class anyone
                        # riding it asked for.
                        flight.priority = priority
                    coalesced = True
            if not coalesced:
                if (
                    deadline is not None
                    and deadline < self._estimated_cost_locked(
                        getattr(job, "kind", "?")
                    )
                ):
                    # The budget cannot honestly cover a fresh decision
                    # procedure: degrade now, occupy nothing.
                    degraded = True
                else:
                    flight = _Flight(
                        key, handle, priority, submitter,
                        next(self._flight_seq),
                    )
                    handle._flight = flight
                    if key is not None:
                        self._inflight[key] = flight
                    if submitter not in self._pass:
                        # New submitters join at the current minimum pass
                        # so they neither jump the line nor inherit a
                        # historic deficit.
                        self._pass[submitter] = min(
                            self._pass.values(), default=0.0
                        )
                    self._queue.append(flight)
        if degraded:
            self.metrics.counter("engine.scheduler.deadline.degraded").inc()
            handle._resolve(
                JobResult(
                    job, job.failure_result(DEADLINE), error=DEADLINE
                )
            )
            self.metrics.counter("engine.scheduler.completed").inc()
            return handle
        if deadline is not None:
            self._arm_deadline(handle, deadline)
        if coalesced:
            return handle
        self.metrics.gauge("engine.scheduler.inflight").add()
        self.metrics.gauge("engine.scheduler.priority.queued").add()
        self._dispatch_ready()
        return handle

    # -- deadlines ---------------------------------------------------------

    def _estimated_cost_locked(self, kind: str) -> float:
        est = self._cost_ewma.get(kind)
        floor = self.deadline_policy.floor_s
        return floor if est is None else max(est, floor)

    def estimated_cost(self, kind: str) -> float:
        """The policy's current estimate (seconds) of a fresh *kind* run."""
        with self._lock:
            return self._estimated_cost_locked(kind)

    def _observe_cost(self, kind: str, duration: float) -> None:
        alpha = self.deadline_policy.ewma_alpha
        with self._lock:
            prev = self._cost_ewma.get(kind)
            self._cost_ewma[kind] = (
                duration
                if prev is None
                else (1.0 - alpha) * prev + alpha * duration
            )

    def _arm_deadline(self, handle: JobHandle, budget: float) -> None:
        """Expire *handle* with a ``"deadline"`` result after *budget* s."""
        timer = threading.Timer(budget, self._expire_deadline, args=(handle,))
        timer.daemon = True
        # Resolution through any path (worker, cache race, cancel) defuses
        # the timer; registering first means a handle that is already done
        # cancels before start, which Timer supports.
        handle._add_done_callback(lambda _h: timer.cancel())
        timer.start()

    def _expire_deadline(self, handle: JobHandle) -> None:
        with self._lock:
            if handle.done():
                return
            job = handle.job
            if not handle._resolve(
                JobResult(
                    job, job.failure_result(DEADLINE), error=DEADLINE
                )
            ):
                return
            self.metrics.counter("engine.scheduler.deadline.expired").inc()
            self.metrics.counter("engine.scheduler.completed").inc()
            self._retire_if_abandoned_locked(handle._flight)

    def attach(self, primary: JobHandle, job: Any) -> JobHandle:
        """A handle for *job* that rides on *primary*'s computation.

        Used by ``BatchEngine.submit_batch`` to coalesce α-equivalent
        duplicates *within* one batch deterministically (the in-flight
        map alone cannot promise a coalesce — with a fast worker the
        first copy may already have finished and turned into a plain
        cache hit by the time the second is submitted).
        """
        handle = JobHandle(job, primary.key, self)
        handle._primary = primary
        self.metrics.counter("engine.scheduler.submitted").inc()
        self.metrics.counter("engine.dedup.coalesced").inc()

        def _forward(done: JobHandle) -> None:
            r = done._result
            assert r is not None
            if handle._resolve(
                JobResult(
                    job,
                    r.value if r.ok else job.failure_result(r.error),
                    cached=r.cached,
                    error=r.error,
                    duration=r.duration,
                    coalesced=True,
                    trace=r.trace,
                )
            ):
                self.metrics.counter("engine.scheduler.completed").inc()

        primary._add_done_callback(_forward)
        return handle

    # -- the ready queue ---------------------------------------------------

    def _select_locked(self) -> Tuple[_Flight, Priority]:
        """Pick the next flight (queue is non-empty; lock held).

        Rank: (effective priority after aging, submitter pass, seq); the
        winner's submitter is charged 1/weight on its pass clock.
        """
        now = time.monotonic()
        best: Optional[_Flight] = None
        best_rank: Optional[Tuple[int, float, int]] = None
        best_eff = Priority.NORMAL
        for flight in self._queue:
            eff = int(flight.priority)
            if self.aging_interval:
                boost = int((now - flight.enqueued) / self.aging_interval)
                if boost > 0:
                    eff = max(int(Priority.HIGH), eff - boost)
            rank = (eff, self._pass.get(flight.submitter, 0.0), flight.seq)
            if best_rank is None or rank < best_rank:
                best, best_rank, best_eff = flight, rank, Priority(eff)
        assert best is not None
        weight = self._weights.get(best.submitter, 1.0)
        self._pass[best.submitter] = (
            self._pass.get(best.submitter, 0.0) + 1.0 / weight
        )
        return best, best_eff

    def _dispatch_ready(self) -> None:
        """Dispatch queued flights while the window has room."""
        while True:
            with self._lock:
                if self._dispatched_now >= self._window or not self._queue:
                    return
                flight, eff = self._select_locked()
                self._queue.remove(flight)
                flight.dispatched = True
                self._dispatched_now += 1
                if eff < flight.priority:
                    self.metrics.counter(
                        "engine.scheduler.priority.aged"
                    ).inc()
                waited = time.monotonic() - flight.enqueued
                job = flight.handles[0].job
            self.metrics.gauge("engine.scheduler.priority.queued").sub()
            self.metrics.counter(
                f"engine.scheduler.priority.dispatched.{eff.name.lower()}"
            ).inc()
            self.metrics.timer("engine.scheduler.queue_wait").observe(waited)
            task: Any = job
            if self.trace_config is not None:
                task = TracedTask(job, self.trace_config, time.time())
            with span(
                "scheduler.dispatch",
                kind=getattr(job, "kind", "?"),
                priority=eff.name.lower(),
                submitter=flight.submitter,
                waited_s=round(waited, 6),
            ):
                try:
                    ticket = self.pool.submit(task)
                except RuntimeError:
                    self._fail_flight(flight, POOL_CLOSED)
                    continue
            self.metrics.counter("engine.scheduler.dispatched").inc()
            with self._lock:
                flight.ticket = ticket
                orphaned = all(h.done() for h in flight.handles)
            ticket.add_done_callback(
                lambda t, flight=flight: self._on_ticket_done(flight, t)
            )
            if orphaned:
                # Every rider cancelled during the dispatch gap: release
                # the pool slot if the task has not started.
                self.pool.cancel(ticket)

    def _fail_flight(self, flight: _Flight, reason: str) -> None:
        """Resolve every rider of an undispatchable flight with *reason*."""
        with self._lock:
            self._dispatched_now -= 1
            if flight.key is not None:
                self._inflight.pop(flight.key, None)
            handles = list(flight.handles)
        self.metrics.gauge("engine.scheduler.inflight").sub()
        for i, h in enumerate(handles):
            if h.done():
                continue
            if h._resolve(
                JobResult(
                    h.job,
                    h.job.failure_result(reason),
                    error=reason,
                    coalesced=i > 0,
                )
            ):
                self.metrics.counter("engine.scheduler.completed").inc()

    # -- catalog ----------------------------------------------------------

    def _catalog_shortcut(self, job: Any) -> Optional[JobHandle]:
        """An already-resolved handle if the catalog proves the answer."""
        assert self.catalog is not None
        if getattr(job, "kind", None) != "containment":
            return None
        if not hasattr(job, "content_hashes"):
            return None
        h1, h2 = job.content_hashes()
        if not self.catalog.equivalent(h1, h2):
            return None
        from ..containment.result import contained

        value = contained(
            "catalog-equivalence",
            "both OMQs are members of one proven-equivalent catalog group",
        )
        self.metrics.counter("engine.catalog.short_circuits").inc()
        handle = JobHandle(job, job.cache_key(), self)
        handle._resolve(JobResult(job, value, cached=True))
        self.metrics.counter("engine.scheduler.completed").inc()
        return handle

    def _witness_shortcut(self, job: Any) -> Optional[JobHandle]:
        """An already-resolved handle if a stored witness refutes *job*.

        Runs ahead of the catalog short-circuit, fixing the shortcut
        ladder at exact → structural → catalog → cache: an exact-pair
        replay is one dict probe, a hash-rung cross-pair replay is at
        most ``scan_limit`` single-side evaluations, and a structural
        (signature-keyed) replay is at most ``scan_limit`` budget-capped
        two-side re-confirmations — all far cheaper than the full
        decision procedure the miss path would eventually dispatch.
        """
        assert self.witness_store is not None
        value = self.witness_store.replay(job)
        if value is None:
            return None
        handle = JobHandle(job, job.cache_key(), self)
        handle._resolve(JobResult(job, value, cached=True))
        self.metrics.counter("engine.scheduler.completed").inc()
        return handle

    def _note_verdict(self, job: Any, value: Any) -> None:
        """Feed a decided verdict back into the durable layers.

        CONTAINED becomes a catalog edge; NOT_CONTAINED deposits its
        witness in the witness store.  Only genuinely decided results
        reach this point: deadline-degraded and pool-failure results are
        UNKNOWN and carry no witness, so neither store can absorb them
        (the regression tests in ``test_witness_store.py`` pin this).
        """
        if getattr(job, "kind", None) != "containment":
            return
        if not hasattr(job, "content_hashes"):
            return
        from ..containment.result import Verdict

        verdict = getattr(value, "verdict", None)
        if (
            self.witness_store is not None
            and verdict is Verdict.NOT_CONTAINED
            and getattr(value, "witness", None) is not None
        ):
            h1, h2 = job.content_hashes()
            # The OMQs ride along so the row is signature-keyed and can
            # serve structural (non-hash-equal) replays.
            self.witness_store.record(
                h1,
                h2,
                value.witness,
                q1=getattr(job, "q1", None),
                q2=getattr(job, "q2", None),
            )
        if self.catalog is None or verdict is not Verdict.CONTAINED:
            return
        h1, h2 = job.content_hashes()
        if h1 == h2:
            return
        merged = self.catalog.note_contained(h1, h2)
        self.metrics.counter("engine.catalog.noted").inc()
        if merged:
            self.metrics.counter("engine.catalog.merges").inc()

    # -- streaming --------------------------------------------------------

    def as_completed(
        self,
        handles: Iterable[JobHandle],
        timeout: Optional[float] = None,
    ) -> Iterator[JobHandle]:
        """Yield handles as they resolve, soonest first.

        Unlike draining ``result()`` in input order, the caller sees each
        outcome the moment a worker produces it.  ``timeout`` bounds the
        *total* wait; expiry raises ``TimeoutError`` with the stragglers
        still pending.
        """
        handles = list(handles)
        done_queue: "queue.Queue[JobHandle]" = queue.Queue()
        for h in handles:
            h._add_done_callback(done_queue.put)
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        for _ in range(len(handles)):
            remaining: Optional[float] = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            try:
                yield done_queue.get(timeout=remaining)
            except queue.Empty:
                raise TimeoutError(
                    f"batch not done after {timeout}s"
                ) from None

    # -- cancellation -----------------------------------------------------

    def _cancel(self, handle: JobHandle) -> bool:
        with self._lock:
            if handle.done():
                return False
            job = handle.job
            resolved = handle._resolve(
                JobResult(
                    job,
                    job.failure_result(CANCELLED),
                    error=CANCELLED,
                )
            )
            if not resolved:
                return False
            self.metrics.counter("engine.scheduler.cancelled").inc()
            self._retire_if_abandoned_locked(handle._flight)
        return True

    def _retire_if_abandoned_locked(self, flight: Optional[_Flight]) -> None:
        """Release *flight*'s resources if no rider is waiting any more."""
        if flight is None or not all(h.done() for h in flight.handles):
            return
        if flight.ticket is not None:
            # Release the pool slot if the task has not started
            # (completing the ticket re-enters _on_ticket_done on
            # this thread — the RLock allows it).
            self.pool.cancel(flight.ticket)
        elif not flight.dispatched:
            # Still waiting in the ready queue: retire it without
            # the pool ever hearing about it.
            try:
                self._queue.remove(flight)
            except ValueError:
                pass
            else:
                if flight.key is not None:
                    self._inflight.pop(flight.key, None)
                self.metrics.gauge("engine.scheduler.inflight").sub()
                self.metrics.gauge("engine.scheduler.priority.queued").sub()
        # A flight mid-dispatch (dispatched, no ticket yet) is
        # handled by the dispatcher's post-submit orphan check.

    # -- completion (runs on the pool's coordinator thread) ---------------

    def _on_ticket_done(self, flight: _Flight, ticket: PoolTicket) -> None:
        outcome = ticket.outcome
        assert outcome is not None
        job = flight.handles[0].job
        cancelled = outcome.failure == CANCELLED
        # Traced tasks bundle the span tree with the value; unwrap before
        # caching so the cache stores plain values, and bank the tree.
        value = outcome.value
        trace: Optional[dict] = None
        if isinstance(value, TracedOutcome):
            trace = value.trace
            value = value.value
            if trace is not None and self.trace_sink is not None:
                self.trace_sink.append(trace)
        if not cancelled:
            self.metrics.counter(f"engine.{job.kind}.runs").inc()
            self.metrics.timer(f"engine.{job.kind}.time").observe(
                outcome.duration
            )
            # Per-kind latency distribution; a traced run leaves its
            # decision id as the bucket exemplar, so a slow bucket in
            # /metrics points at a concrete span tree.
            self.metrics.histogram(
                f"engine.job.seconds.{job.kind}", buckets=LATENCY_BUCKETS
            ).observe(
                outcome.duration,
                exemplar=trace["id"] if trace is not None else None,
            )
            self._observe_cost(job.kind, outcome.duration)
            if outcome.ok:
                if flight.key is not None:
                    self.cache.put(flight.key, value)
                self._note_verdict(job, value)
            else:
                self.metrics.counter(f"engine.{job.kind}.failures").inc()
        # The cache now holds the value (if any), so a submit that races
        # the pop below lands on a cache hit rather than a recompute.
        with self._lock:
            self._dispatched_now -= 1
            if flight.key is not None:
                self._inflight.pop(flight.key, None)
            handles = list(flight.handles)
        self.metrics.gauge("engine.scheduler.inflight").sub()
        for i, h in enumerate(handles):
            if h.done():  # individually cancelled earlier
                continue
            if outcome.ok:
                result = JobResult(
                    h.job,
                    value,
                    duration=outcome.duration,
                    coalesced=i > 0,
                    trace=trace,
                )
            else:
                result = JobResult(
                    h.job,
                    h.job.failure_result(outcome.failure),
                    error=outcome.failure,
                    duration=outcome.duration,
                    coalesced=i > 0,
                    trace=trace,
                )
            if h._resolve(result):
                self.metrics.counter("engine.scheduler.completed").inc()
        # A slot opened: pull the next queued flight in priority order.
        self._dispatch_ready()
