"""The ``BatchEngine`` façade: cached, parallel, failure-isolated batches.

This is the layer the ROADMAP's production story needs between callers and
the per-call library API: a service-shaped object that (a) never computes
an answer it has already computed — lookups go through the canonical-hash
cache of :mod:`repro.engine.cache`, so α-equivalent inputs hit; (b) never
computes an answer it is *currently* computing — α-equivalent submissions
coalesce onto one in-flight job via :mod:`repro.engine.scheduler`;
(c) runs independent jobs across a :class:`repro.engine.pool.WorkerPool`,
where a hung or killed worker costs one UNKNOWN result, not the batch; and
(d) accounts for everything in a :class:`~repro.engine.metrics.MetricsRegistry`.

Two submission styles share all of that machinery:

* **async** — :meth:`submit` returns a
  :class:`~repro.engine.scheduler.JobHandle` immediately;
  :meth:`as_completed` streams outcomes as workers finish.
* **batch** — :meth:`run_batch` is now submit-all + drain over the same
  scheduler: results still come back in input order, but duplicated
  α-equivalent jobs inside the batch are detected up front and scheduled
  once (``engine.dedup.coalesced`` counts the absorbed copies).

``contains`` / ``rewrite`` / ``classify`` are one-job conveniences, and
:meth:`containment_matrix` builds the all-pairs verdict matrix that powers
minimization-at-scale (every off-diagonal ordered pair is an independent
job, so the matrix parallelizes and warm re-runs are nearly free).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.omq import OMQ
from ..core.tgd import TGD
from ..obs import TraceConfig
from .cache import ResultCache
from .catalog import OMQCatalog
from .jobs import (
    ClassificationOutcome,
    ClassifyJob,
    ContainmentJob,
    JobResult,
    RewriteJob,
)
from .metrics import MetricsRegistry
from .pool import WorkerPool
from .scheduler import DeadlinePolicy, JobHandle, Priority, Scheduler
from .witness_store import REPLAY_MODES, WitnessStore


class BatchEngine:
    """Batched containment/rewriting/classification with caching and a pool.

    Parameters
    ----------
    cache_dir:
        Directory for the persistent result cache; ``None`` keeps results
        in memory only.
    workers:
        Pool width.  ``1`` (the default) executes jobs in-process on the
        scheduler's serial thread — deterministic, no subprocesses.
    task_timeout:
        Per-task wall-clock limit in seconds, enforced when ``workers > 1``.
    cache_backend:
        Disk layer under the LRU: a name from
        :func:`repro.engine.cache.available_backends` (``"sqlite"``,
        ``"sharded"``, ``"memory"``) or a ready
        :class:`~repro.engine.cache.CacheBackend` instance.
    cache:
        A pre-built :class:`~repro.engine.cache.ResultCache` to use
        as-is (``cache_dir``/``cache_backend``/``memory_cache_size`` are
        then ignored).
    catalog:
        Cross-session equivalence catalog: a path for a persistent
        :class:`~repro.engine.catalog.OMQCatalog`, a ready instance, or
        ``None`` (off).  Containment jobs then share cache rows within
        proven-equivalent OMQ groups and short-circuit when both sides
        are in one group.
    witness_store:
        Cross-session store of NOT_CONTAINED counterexamples: a path for
        a persistent :class:`~repro.engine.witness_store.WitnessStore`, a
        ready instance, or ``None`` (off).  Containment jobs then replay
        stored witnesses (at most two cheap hom-checks) ahead of the
        catalog and the full decision procedure, and every NOT_CONTAINED
        verdict deposits its signature-keyed witness for future sessions.
    witness_replay:
        Replay-mode override for the store — ``"exact"`` (hash-equal
        rungs only), ``"structural"`` (adds signature-keyed subsumption
        replay; the default for path-built stores), or ``"off"``.
        ``None`` leaves a ready store instance's own mode untouched.
    max_inflight / aging_interval:
        Scheduler tuning: dispatch-window width (default: worker count)
        and seconds-per-class priority aging (see
        :class:`~repro.engine.scheduler.Scheduler`).
    deadline_policy:
        Admission/expiry policy for deadline-carrying submissions
        (:class:`~repro.engine.scheduler.DeadlinePolicy`); the serving
        tier tunes ``floor_s`` per deployment.
    trace:
        Decision tracing for every job the engine runs: ``None``/"off"
        disables, a mode string ("always", "per-job") or a full
        :class:`repro.obs.TraceConfig` enables.  The config ships to pool
        workers with each task, completed span trees ride back with the
        results (``JobResult.trace``), and :meth:`traces` /
        ``stats()["traces"]`` collect them engine-wide.
    max_traces:
        Bound on the engine-wide trace sink (oldest trees dropped past
        it).  ``None`` (the default) keeps every tree — right for batch
        runs that export a trace file on exit; long-lived servers that
        trace continuously must set a bound.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        workers: int = 1,
        task_timeout: Optional[float] = None,
        memory_cache_size: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
        start_method: Optional[str] = None,
        trace: Union[None, str, TraceConfig] = None,
        cache_backend: Any = "sqlite",
        cache: Optional[ResultCache] = None,
        catalog: Union[None, str, OMQCatalog] = None,
        witness_store: Union[None, str, WitnessStore] = None,
        witness_replay: Optional[str] = None,
        max_inflight: Optional[int] = None,
        aging_interval: Optional[float] = 5.0,
        deadline_policy: Optional[DeadlinePolicy] = None,
        max_traces: Optional[int] = None,
    ) -> None:
        self.metrics = metrics or MetricsRegistry()
        self.cache = cache if cache is not None else ResultCache(
            cache_dir,
            memory_cache_size,
            metrics=self.metrics,
            backend=cache_backend,
        )
        if isinstance(catalog, (str, bytes)) or hasattr(catalog, "__fspath__"):
            catalog = OMQCatalog(str(catalog))
        self.catalog: Optional[OMQCatalog] = catalog
        if witness_replay is not None and witness_replay not in REPLAY_MODES:
            raise ValueError(
                f"unknown witness_replay {witness_replay!r}; "
                f"choose from {REPLAY_MODES}"
            )
        if isinstance(witness_store, (str, bytes)) or hasattr(
            witness_store, "__fspath__"
        ):
            witness_store = WitnessStore(
                str(witness_store),
                replay_mode=witness_replay or "structural",
                metrics=self.metrics,
            )
        elif witness_store is not None:
            if witness_store.metrics is None:
                # Adopt the engine's registry so engine.witness.* counters
                # surface in stats() and the serve tier's /metrics.
                witness_store.metrics = self.metrics
            if witness_replay is not None:
                witness_store.replay_mode = witness_replay
        self.witness_store: Optional[WitnessStore] = witness_store
        self.pool = WorkerPool(
            workers=workers,
            task_timeout=task_timeout,
            start_method=start_method,
        )
        if isinstance(trace, str):
            trace = None if trace == "off" else TraceConfig(mode=trace)
        self.trace_config: Optional[TraceConfig] = trace
        # deque(maxlen) drops the *oldest* tree on overflow — the bound a
        # continuously-tracing server wants; appends stay O(1) either way.
        self._traces: Any = (
            deque(maxlen=max_traces) if max_traces else []
        )
        self.scheduler = Scheduler(
            self.pool,
            self.cache,
            self.metrics,
            trace_config=self.trace_config,
            trace_sink=self._traces,
            catalog=self.catalog,
            witness_store=self.witness_store,
            max_inflight=max_inflight,
            aging_interval=aging_interval,
            deadline_policy=deadline_policy,
        )

    # -- async submission --------------------------------------------------

    def submit(
        self,
        job: Any,
        *,
        priority: Union[Priority, int, str] = Priority.NORMAL,
        submitter: str = "default",
        deadline: Optional[float] = None,
    ) -> JobHandle:
        """Enqueue *job* without blocking; resolves from the catalog,
        cache, an α-equivalent in-flight computation, or a worker.
        *priority* and *submitter* feed the scheduler's class-based,
        weighted-fair-share dispatch order; *deadline* (seconds) arms
        the scheduler's degradation policy."""
        return self.scheduler.submit(
            job, priority=priority, submitter=submitter, deadline=deadline
        )

    def submit_batch(
        self,
        jobs: Sequence[Any],
        *,
        priority: Union[Priority, int, str] = Priority.NORMAL,
        submitter: str = "default",
    ) -> List[JobHandle]:
        """Submit all *jobs*; handles are aligned with the input order.

        α-equivalent duplicates within the batch are coalesced
        deterministically: only the first copy of each canonical key is
        scheduled, and the other copies' handles ride on it.  With a
        catalog attached, keys are group-representative keys, so
        proven-equivalent (not just α-equivalent) copies coalesce too.
        """
        first_by_key: dict = {}
        handles: List[JobHandle] = []
        for job in jobs:
            key = self.scheduler.effective_key(job)
            primary = first_by_key.get(key) if key is not None else None
            if primary is not None:
                handles.append(self.scheduler.attach(primary, job))
                continue
            handle = self.scheduler.submit(
                job, priority=priority, submitter=submitter
            )
            if key is not None:
                first_by_key[key] = handle
            handles.append(handle)
        return handles

    def as_completed(
        self,
        handles: Iterable[JobHandle],
        timeout: Optional[float] = None,
    ) -> Iterator[JobHandle]:
        """Yield handles as their results arrive (completion order)."""
        return self.scheduler.as_completed(handles, timeout)

    # -- the batch primitive ---------------------------------------------

    def run_batch(
        self,
        jobs: Sequence[Any],
        *,
        priority: Union[Priority, int, str] = Priority.NORMAL,
        submitter: str = "default",
    ) -> List[JobResult]:
        """Run *jobs*, consulting the cache first; results in input order."""
        with self.metrics.timer("engine.batch").time():
            handles = self.submit_batch(
                list(jobs), priority=priority, submitter=submitter
            )
            return [h.result() for h in handles]

    # -- one-job conveniences --------------------------------------------

    def contains(self, q1: OMQ, q2: OMQ, **params) -> JobResult:
        """Cached/pooled ``contains(q1, q2)``; value is a ContainmentResult."""
        return self.run_batch([ContainmentJob(q1, q2, **params)])[0]

    def rewrite(self, omq: OMQ, budget: int = 20_000) -> JobResult:
        """Cached/pooled XRewrite; value is a RewritingResult."""
        return self.run_batch([RewriteJob(omq, budget)])[0]

    def classify(self, sigma: Sequence[TGD]) -> JobResult:
        """Cached/pooled fragment classification of a tgd set."""
        return self.run_batch([ClassifyJob(tuple(sigma))])[0]

    # -- the all-pairs helper --------------------------------------------

    def containment_matrix(
        self, omqs: Sequence[OMQ], **params
    ) -> List[List[JobResult]]:
        """The ``n × n`` matrix of ``omqs[i] ⊆ omqs[j]`` results.

        Off-diagonal entries are independent jobs (parallel, cached,
        deduplicated); diagonal entries are trivially CONTAINED and never
        scheduled.  This is the scale-out substrate for ``optimize.py``-
        style minimization over query catalogs.
        """
        from ..containment.result import contained

        n = len(omqs)
        pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
        batch = self.run_batch(
            [ContainmentJob(omqs[i], omqs[j], **params) for i, j in pairs]
        )
        matrix: List[List[Optional[JobResult]]] = [
            [None] * n for _ in range(n)
        ]
        for i in range(n):
            matrix[i][i] = JobResult(
                None, contained("reflexivity", "Q ⊆ Q trivially"), cached=True
            )
        for (i, j), result in zip(pairs, batch):
            matrix[i][j] = result
        return matrix  # type: ignore[return-value]

    # -- accounting -------------------------------------------------------

    def traces(self) -> List[dict]:
        """Serialized decision-span trees collected so far (tracing on)."""
        return list(self._traces)

    def stats(self) -> dict:
        """Cache statistics plus one unified, namespaced metric snapshot.

        ``metrics`` merges the engine registry (``engine.*``), the kernel
        registry (``kernel.*``), and the tracer's registry (``obs.*``) —
        the namespaces are disjoint by convention, so the merge is exactly
        their union.  ``kernel`` is kept as a separate key for callers of
        the pre-unification shape.  Kernel/obs numbers reflect this
        process's registries — fully populated with ``workers=1`` (jobs
        execute in-process on the scheduler's serial thread); with a
        process pool the workers' counters stay in the workers, but span
        trees still ride back (``traces``).
        """
        from ..kernel import kernel_snapshot
        from ..obs import obs_snapshot

        kernel = kernel_snapshot()
        out = {
            "cache": self.cache.stats(),
            "metrics": {
                **self.metrics.snapshot(),
                **kernel,
                **obs_snapshot(),
            },
            "kernel": kernel,
        }
        if self.catalog is not None:
            out["catalog"] = self.catalog.stats()
        if self.witness_store is not None:
            out["witness_store"] = self.witness_store.stats()
        if self.trace_config is not None:
            out["traces"] = self.traces()
        return out

    def close(self) -> None:
        self.pool.close()
        self.cache.close()
        if self.catalog is not None:
            self.catalog.close()
        if self.witness_store is not None:
            self.witness_store.close()

    def __enter__(self) -> "BatchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
