"""The ``BatchEngine`` façade: cached, parallel, failure-isolated batches.

This is the layer the ROADMAP's production story needs between callers and
the per-call library API: a service-shaped object that (a) never computes
an answer it has already computed — lookups go through the canonical-hash
cache of :mod:`repro.engine.cache`, so α-equivalent inputs hit; (b) runs
independent jobs across a :class:`repro.engine.pool.WorkerPool`, where a
hung or killed worker costs one UNKNOWN result, not the batch; and
(c) accounts for everything in a :class:`~repro.engine.metrics.MetricsRegistry`.

``run_batch`` is the primitive.  ``contains`` / ``rewrite`` / ``classify``
are one-job conveniences, and :meth:`containment_matrix` builds the all-
pairs verdict matrix that powers minimization-at-scale (every off-diagonal
ordered pair is an independent job, so the matrix parallelizes and warm
re-runs are nearly free).
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from ..core.omq import OMQ
from ..core.tgd import TGD
from .cache import ResultCache
from .jobs import (
    ClassificationOutcome,
    ClassifyJob,
    ContainmentJob,
    JobResult,
    RewriteJob,
)
from .metrics import MetricsRegistry
from .pool import WorkerPool


class BatchEngine:
    """Batched containment/rewriting/classification with caching and a pool.

    Parameters
    ----------
    cache_dir:
        Directory for the persistent sqlite cache; ``None`` keeps results
        in memory only.
    workers:
        Pool width.  ``1`` (the default) is the deterministic serial path.
    task_timeout:
        Per-task wall-clock limit in seconds, enforced when ``workers > 1``.
    """

    def __init__(
        self,
        cache_dir: Optional[str] = None,
        workers: int = 1,
        task_timeout: Optional[float] = None,
        memory_cache_size: int = 4096,
        metrics: Optional[MetricsRegistry] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.metrics = metrics or MetricsRegistry()
        self.cache = ResultCache(
            cache_dir, memory_cache_size, metrics=self.metrics
        )
        self.pool = WorkerPool(
            workers=workers,
            task_timeout=task_timeout,
            start_method=start_method,
        )

    # -- the batch primitive ---------------------------------------------

    def run_batch(self, jobs: Sequence[Any]) -> List[JobResult]:
        """Run *jobs*, consulting the cache first; results in input order."""
        jobs = list(jobs)
        results: List[Optional[JobResult]] = [None] * len(jobs)
        misses: List[Tuple[int, Any, Optional[str]]] = []
        with self.metrics.timer("engine.batch").time():
            for i, job in enumerate(jobs):
                key = job.cache_key()
                if key is not None:
                    found, value = self.cache.get(key)
                    if found:
                        results[i] = JobResult(job, value, cached=True)
                        self.metrics.counter(
                            f"engine.{job.kind}.cache_hits"
                        ).inc()
                        continue
                misses.append((i, job, key))

            if misses:
                outcomes = self.pool.run([job for _, job, _ in misses])
                for (i, job, key), outcome in zip(misses, outcomes):
                    self.metrics.counter(f"engine.{job.kind}.runs").inc()
                    self.metrics.timer(f"engine.{job.kind}.time").observe(
                        outcome.duration
                    )
                    if outcome.ok:
                        results[i] = JobResult(
                            job, outcome.value, duration=outcome.duration
                        )
                        if key is not None:
                            self.cache.put(key, outcome.value)
                    else:
                        self.metrics.counter(
                            f"engine.{job.kind}.failures"
                        ).inc()
                        results[i] = JobResult(
                            job,
                            job.failure_result(outcome.failure),
                            error=outcome.failure,
                            duration=outcome.duration,
                        )
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    # -- one-job conveniences --------------------------------------------

    def contains(self, q1: OMQ, q2: OMQ, **params) -> JobResult:
        """Cached/pooled ``contains(q1, q2)``; value is a ContainmentResult."""
        return self.run_batch([ContainmentJob(q1, q2, **params)])[0]

    def rewrite(self, omq: OMQ, budget: int = 20_000) -> JobResult:
        """Cached/pooled XRewrite; value is a RewritingResult."""
        return self.run_batch([RewriteJob(omq, budget)])[0]

    def classify(self, sigma: Sequence[TGD]) -> JobResult:
        """Cached/pooled fragment classification of a tgd set."""
        return self.run_batch([ClassifyJob(tuple(sigma))])[0]

    # -- the all-pairs helper --------------------------------------------

    def containment_matrix(
        self, omqs: Sequence[OMQ], **params
    ) -> List[List[JobResult]]:
        """The ``n × n`` matrix of ``omqs[i] ⊆ omqs[j]`` results.

        Off-diagonal entries are independent jobs (parallel, cached);
        diagonal entries are trivially CONTAINED and never scheduled.
        This is the scale-out substrate for ``optimize.py``-style
        minimization over query catalogs.
        """
        from ..containment.result import contained

        n = len(omqs)
        pairs = [(i, j) for i in range(n) for j in range(n) if i != j]
        batch = self.run_batch(
            [ContainmentJob(omqs[i], omqs[j], **params) for i, j in pairs]
        )
        matrix: List[List[Optional[JobResult]]] = [
            [None] * n for _ in range(n)
        ]
        for i in range(n):
            matrix[i][i] = JobResult(
                None, contained("reflexivity", "Q ⊆ Q trivially"), cached=True
            )
        for (i, j), result in zip(pairs, batch):
            matrix[i][j] = result
        return matrix  # type: ignore[return-value]

    # -- accounting -------------------------------------------------------

    def stats(self) -> dict:
        """Cache statistics plus the engine and kernel metric snapshots.

        ``kernel`` reflects this process's kernel registry — fully populated
        on the serial path (``workers=1``, jobs run inline); with a process
        pool the workers' kernel counters stay in the workers.
        """
        from ..kernel import kernel_snapshot

        return {
            "cache": self.cache.stats(),
            "metrics": self.metrics.snapshot(),
            "kernel": kernel_snapshot(),
        }

    def close(self) -> None:
        self.cache.close()

    def __enter__(self) -> "BatchEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
