"""Bounded emptiness checking for 2WAPA.

The paper decides emptiness of the constructed 2WAPA in exponential time in
the number of states [32]; that conversion (two-way alternating → one-way
nondeterministic) is the piece we substitute (DESIGN.md): this module
enumerates labeled trees over a *given* finite label set up to a depth and
branching bound and model-checks acceptance with the exact parity-game
procedure.  This decides emptiness *relative to the bound* — sound
"non-empty" answers with an explicit witness tree, and honest
``None``/unknown when the bounded space is exhausted.
"""

from __future__ import annotations

import itertools
from typing import Iterator, List, Optional, Sequence, Tuple

from ..trees.labeled_tree import LabeledTree, Node
from .twapa import TWAPA


def enumerate_trees(
    labels: Sequence[object], max_depth: int, max_branching: int
) -> Iterator[LabeledTree]:
    """All labeled trees over *labels* with bounded depth and branching.

    Enumeration is by increasing node count (so witnesses are minimal),
    deterministic, and treats children as ordered (the 2WAPA model cannot
    distinguish sibling order, so this only costs duplicates, not misses).
    """

    def shapes(depth: int) -> Iterator[Tuple]:
        """Tree shapes as nested tuples, by increasing size."""
        yield ()
        if depth == 0:
            return
        # Generate shapes with k children, each a smaller shape.
        smaller = list(shapes(depth - 1))
        for k in range(1, max_branching + 1):
            for combo in itertools.product(smaller, repeat=k):
                yield tuple(combo)

    def size(shape: Tuple) -> int:
        return 1 + sum(size(c) for c in shape)

    all_shapes = sorted(set(shapes(max_depth)), key=lambda s: (size(s), repr(s)))

    def labelings(shape: Tuple, prefix: Node) -> Iterator[dict]:
        child_options: List[List[dict]] = []
        for i, child in enumerate(shape, start=1):
            child_options.append(list(labelings(child, prefix + (i,))))
        for label in labels:
            base = {prefix: label}
            for combo in itertools.product(*child_options):
                merged = dict(base)
                for c in combo:
                    merged.update(c)
                yield merged

    for shape in all_shapes:
        for labeling in labelings(shape, ()):
            yield LabeledTree(labeling)


def find_accepted_tree(
    automaton: TWAPA,
    labels: Sequence[object],
    max_depth: int = 2,
    max_branching: int = 2,
    max_trees: Optional[int] = None,
) -> Optional[LabeledTree]:
    """A tree accepted by the automaton within the bounds, or None.

    ``None`` means the bounded space held no witness — *not* that the
    language is empty in general.
    """
    for i, tree in enumerate(enumerate_trees(labels, max_depth, max_branching)):
        if max_trees is not None and i >= max_trees:
            return None
        if automaton.accepts(tree):
            return tree
    return None


def is_empty_bounded(
    automaton: TWAPA,
    labels: Sequence[object],
    max_depth: int = 2,
    max_branching: int = 2,
    max_trees: Optional[int] = None,
) -> bool:
    """True iff no tree within the bounds is accepted (bounded emptiness)."""
    return (
        find_accepted_tree(automaton, labels, max_depth, max_branching, max_trees)
        is None
    )


def count_accepted_trees(
    automaton: TWAPA,
    labels: Sequence[object],
    max_depth: int,
    max_branching: int,
) -> int:
    """How many trees in the bounded space are accepted.

    Used by the UCQ-rewritability application: Proposition 31 reduces
    rewritability to *finiteness* of a tree language, which we probe by
    counting accepted trees at increasing depths.
    """
    return sum(
        1
        for tree in enumerate_trees(labels, max_depth, max_branching)
        if automaton.accepts(tree)
    )
