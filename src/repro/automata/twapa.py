"""Two-way alternating parity automata on finite labeled trees (Defs 10–11).

A 2WAPA is ``A = (S, Γ, δ, s0, Ω)`` where ``δ : S × Γ → B+(tran(A))`` maps a
state and a letter to a positive Boolean formula over transitions
``⟨α⟩s`` / ``[α]s`` with ``α ∈ {-1, 0, *}``:

* ``⟨-1⟩s`` — send a copy to the parent (which must exist) in state s;
* ``⟨0⟩s``  — stay put in state s;
* ``⟨*⟩s``  — send a copy to *some* child;
* ``[α]s``  — the universal duals (vacuously true when no target exists).

A run is accepting if along every infinite path the maximal priority seen
infinitely often is even; the paper's constructions set ``Ω ≡ 1``, so they
accept exactly through finite runs.

Acceptance of a *given* finite tree is decided here by solving the standard
acceptance parity game (positions = (node, state/formula); Eve resolves
disjunctions and ⟨·⟩ moves, Adam conjunctions and [·] moves) with Zielonka's
algorithm — exact for arbitrary priorities, not just the Ω ≡ 1 case.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..trees.labeled_tree import LabeledTree, Node

State = Hashable
Direction = Union[int, str]  # -1, 0, or "*"

PARENT: Direction = -1
STAY: Direction = 0
CHILD: Direction = "*"


# ---------------------------------------------------------------------------
# Positive Boolean formulas over transitions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Formula:
    """Base class for positive Boolean transition formulas."""

    def dual(self) -> "Formula":
        raise NotImplementedError


@dataclass(frozen=True)
class Top(Formula):
    def dual(self) -> "Formula":
        return Bottom()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True)
class Bottom(Formula):
    def dual(self) -> "Formula":
        return Top()

    def __str__(self) -> str:
        return "false"


@dataclass(frozen=True)
class Move(Formula):
    """``⟨α⟩s`` (existential) or ``[α]s`` (universal)."""

    direction: Direction
    state: State
    universal: bool = False

    def dual(self) -> "Formula":
        return Move(self.direction, self.state, not self.universal)

    def __str__(self) -> str:
        bracket = f"[{self.direction}]" if self.universal else f"⟨{self.direction}⟩"
        return f"{bracket}{self.state}"


@dataclass(frozen=True)
class And(Formula):
    parts: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "parts", tuple(self.parts))

    def dual(self) -> "Formula":
        return Or(tuple(p.dual() for p in self.parts))

    def __str__(self) -> str:
        return "(" + " ∧ ".join(map(str, self.parts)) + ")"


@dataclass(frozen=True)
class Or(Formula):
    parts: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "parts", tuple(self.parts))

    def dual(self) -> "Formula":
        return And(tuple(p.dual() for p in self.parts))

    def __str__(self) -> str:
        return "(" + " ∨ ".join(map(str, self.parts)) + ")"


def conj(parts: Sequence[Formula]) -> Formula:
    """n-ary conjunction with unit simplification."""
    parts = [p for p in parts if not isinstance(p, Top)]
    if any(isinstance(p, Bottom) for p in parts):
        return Bottom()
    if not parts:
        return Top()
    if len(parts) == 1:
        return parts[0]
    return And(tuple(parts))


def disj(parts: Sequence[Formula]) -> Formula:
    """n-ary disjunction with unit simplification."""
    parts = [p for p in parts if not isinstance(p, Bottom)]
    if any(isinstance(p, Top) for p in parts):
        return Top()
    if not parts:
        return Bottom()
    if len(parts) == 1:
        return parts[0]
    return Or(tuple(parts))


def diamond(direction: Direction, state: State) -> Formula:
    return Move(direction, state, universal=False)


def box(direction: Direction, state: State) -> Formula:
    return Move(direction, state, universal=True)


# ---------------------------------------------------------------------------
# The automaton
# ---------------------------------------------------------------------------


@dataclass
class TWAPA:
    """A two-way alternating parity automaton on finite labeled trees.

    ``delta`` is a Python callable (state, label) → Formula, which keeps
    alphabets like Γ_{S,l} implicit instead of materializing their
    double-exponential symbol set.  ``priority`` maps states to parities;
    states default to priority 1 (finite-runs-only, as in the paper).
    """

    states: FrozenSet[State]
    delta: Callable[[State, object], Formula]
    initial: State
    priority: Mapping[State, int] = field(default_factory=dict)
    name: str = "A"

    def priority_of(self, state: State) -> int:
        return self.priority.get(state, 1)

    def state_count(self) -> int:
        return len(self.states)

    # -- Boolean operations (closure properties used by Prop. 25) ---------

    def intersect(self, other: "TWAPA") -> "TWAPA":
        """A 2WAPA for L(self) ∩ L(other) (linear-size product-free trick)."""
        left = self._tagged("L")
        right = other._tagged("R")
        start = ("∩", left.initial, right.initial)

        def delta(state: State, label: object) -> Formula:
            if isinstance(state, tuple) and state and state[0] == "∩":
                return conj(
                    [left.delta(state[1], label), right.delta(state[2], label)]
                )
            if isinstance(state, tuple) and state and state[0] == "L":
                return left.delta(state, label)
            return right.delta(state, label)

        priorities = dict(left.priority)
        priorities.update(right.priority)
        priorities[start] = 1
        return TWAPA(
            frozenset({start}) | left.states | right.states,
            delta,
            start,
            priorities,
            name=f"({self.name}∩{other.name})",
        )

    def complement(self) -> "TWAPA":
        """The dual automaton: L(complement) = trees \\ L(self)."""
        base = self

        def delta(state: State, label: object) -> Formula:
            return base.delta(state, label).dual()

        priorities = {s: base.priority_of(s) + 1 for s in base.states}
        return TWAPA(
            base.states, delta, base.initial, priorities, name=f"¬{base.name}"
        )

    def _tagged(self, tag: str) -> "TWAPA":
        """Rename states to (tag, state) so unions are disjoint."""
        base = self

        def retag_formula(f: Formula) -> Formula:
            if isinstance(f, Move):
                return Move(f.direction, (tag, f.state), f.universal)
            if isinstance(f, And):
                return And(tuple(retag_formula(p) for p in f.parts))
            if isinstance(f, Or):
                return Or(tuple(retag_formula(p) for p in f.parts))
            return f

        def delta(state: State, label: object) -> Formula:
            return retag_formula(base.delta(state[1], label))

        return TWAPA(
            frozenset((tag, s) for s in base.states),
            delta,
            (tag, base.initial),
            {(tag, s): base.priority_of(s) for s in base.states},
            name=base.name,
        )

    # -- acceptance --------------------------------------------------------

    def accepts(self, tree: LabeledTree) -> bool:
        """Does the automaton accept *tree*?  Solved as a parity game."""
        if not tree.labels:
            return False
        game = _AcceptanceGame(self, tree)
        return game.eve_wins((tree.root, ("state", self.initial)))


# ---------------------------------------------------------------------------
# The acceptance parity game
# ---------------------------------------------------------------------------


_FormulaPos = Tuple[str, object]


class _AcceptanceGame:
    """The (node, state/formula) acceptance game, solved with Zielonka.

    Positions:
      (node, ("state", s))    — priority Ω(s), deterministic expansion;
      (node, ("formula", f))  — priority 0, owner by connective.
    Eve owns Or and existential moves; Adam owns And and universal moves.
    A player unable to move loses at their own position.
    """

    def __init__(self, automaton: TWAPA, tree: LabeledTree) -> None:
        self.automaton = automaton
        self.tree = tree
        self.successors: Dict[Tuple[Node, _FormulaPos], List] = {}
        self.owner: Dict[Tuple[Node, _FormulaPos], str] = {}
        self.prio: Dict[Tuple[Node, _FormulaPos], int] = {}
        self._build((tree.root, ("state", automaton.initial)))

    def _targets(self, node: Node, direction: Direction) -> List[Node]:
        if direction == 0:
            return [node]
        if direction == -1:
            parent = self.tree.parent(node)
            return [parent] if parent is not None else []
        if direction == "*":
            return self.tree.children(node)
        raise ValueError(f"bad direction {direction!r}")

    def _build(self, start: Tuple[Node, _FormulaPos]) -> None:
        stack = [start]
        seen: Set[Tuple[Node, _FormulaPos]] = set()
        while stack:
            pos = stack.pop()
            if pos in seen:
                continue
            seen.add(pos)
            node, (kind, payload) = pos
            if kind == "state":
                formula = self.automaton.delta(payload, self.tree.label(node))
                succ = [(node, ("formula", formula))]
                self.owner[pos] = "eve"  # deterministic: one successor
                self.prio[pos] = self.automaton.priority_of(payload)
            else:
                f = payload
                self.prio[pos] = 0
                if isinstance(f, Top):
                    self.owner[pos] = "adam"  # Adam stuck → Eve wins
                    succ = []
                elif isinstance(f, Bottom):
                    self.owner[pos] = "eve"  # Eve stuck → Adam wins
                    succ = []
                elif isinstance(f, Or):
                    self.owner[pos] = "eve"
                    succ = [(node, ("formula", p)) for p in f.parts]
                elif isinstance(f, And):
                    self.owner[pos] = "adam"
                    succ = [(node, ("formula", p)) for p in f.parts]
                elif isinstance(f, Move):
                    targets = self._targets(node, f.direction)
                    succ = [(t, ("state", f.state)) for t in targets]
                    self.owner[pos] = "adam" if f.universal else "eve"
                else:  # pragma: no cover - formula algebra is closed
                    raise TypeError(f"unknown formula {f!r}")
            self.successors[pos] = succ
            stack.extend(succ)

    _SINK_EVE = ("sink", "eve")  # Eve wins here: even self-loop, Adam-owned
    _SINK_ADAM = ("sink", "adam")  # Adam wins here: odd self-loop, Eve-owned

    def _totalize(self) -> None:
        """Redirect stuck positions into winning sinks so the game is total."""
        sinks = {
            self._SINK_EVE: ("adam", 0),
            self._SINK_ADAM: ("eve", 1),
        }
        for sink, (owner_, prio_) in sinks.items():
            self.owner[sink] = owner_
            self.prio[sink] = prio_
            self.successors[sink] = [sink]
        for pos, succ in list(self.successors.items()):
            if succ or pos in sinks:
                continue
            # The stuck owner loses: send them into the opponent's sink.
            self.successors[pos] = [
                self._SINK_ADAM if self.owner[pos] == "eve" else self._SINK_EVE
            ]

    def eve_wins(self, start) -> bool:
        self._totalize()
        eve_region, _ = _zielonka(
            frozenset(self.successors), self.successors, self.owner, self.prio
        )
        return start in eve_region


def _zielonka(
    positions: FrozenSet, successors, owner, priority
) -> Tuple[Set, Set]:
    """Zielonka's algorithm on a total parity game.

    Returns (W_eve, W_adam).  Every position must have ≥1 successor within
    *positions* at the top call; subgames preserve totality because they
    always arise by removing attractors.
    """
    if not positions:
        return set(), set()
    max_priority = max(priority[p] for p in positions)
    player = "eve" if max_priority % 2 == 0 else "adam"
    opponent = "adam" if player == "eve" else "eve"
    top = {p for p in positions if priority[p] == max_priority}
    attr = _attractor(positions, successors, owner, top, player)
    w_eve, w_adam = _zielonka(positions - attr, successors, owner, priority)
    opponent_region = w_eve if opponent == "eve" else w_adam
    if not opponent_region:
        return (set(positions), set()) if player == "eve" else (set(), set(positions))
    opp_attr = _attractor(positions, successors, owner, opponent_region, opponent)
    w_eve2, w_adam2 = _zielonka(positions - opp_attr, successors, owner, priority)
    if opponent == "eve":
        return w_eve2 | opp_attr, w_adam2
    return w_eve2, w_adam2 | opp_attr


def _attractor(positions, successors, owner, target, player) -> Set:
    """The *player*-attractor of *target* within *positions*."""
    attr = set(target) & set(positions)
    changed = True
    while changed:
        changed = False
        for p in set(positions) - attr:
            succ = [q for q in successors[p] if q in positions]
            if not succ:
                continue
            if owner[p] == player and any(q in attr for q in succ):
                attr.add(p)
                changed = True
            elif owner[p] != player and all(q in attr for q in succ):
                attr.add(p)
                changed = True
    return attr
