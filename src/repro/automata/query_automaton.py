"""The CQ automaton A_{q,l} (Lemma 48) — implemented for its tractable slice.

Lemma 48 builds a 2WAPA accepting the consistent Γ_{S,l}-labeled trees t
with ``⟦t⟧ ⊨ q``, with exponentially many states in ``|var≥2(q)|`` and
polynomially many in ``|var=1(q)|``.  We implement the slice
``var≥2(q) = ∅`` *exactly* (every variable occurs in one atom, so the query
is a conjunction of variable-disjoint atoms and the automaton is the
polynomial two-pass machine of the lemma with an empty first pass): the
automaton branches universally into one search per atom, each of which
wanders the tree looking for a node whose label satisfies the atom
existentially.  Constants in the query are matched against *core names*,
whose decoded identity is global along the root path (consistency (4)),
namely the names listed in the supplied assignment.

For queries with join variables the construction needs the
squid-decomposition bookkeeping the paper sketches; per DESIGN.md that part
is substituted by direct decoding + homomorphism search
(:func:`repro.trees.ctree.decode_tree`), against which this automaton is
cross-validated on its shared domain.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Tuple

from ..core.atoms import Atom
from ..core.queries import CQ
from ..core.terms import Constant, Variable
from ..trees.ctree import Alphabet, TreeLabel
from .twapa import TWAPA, Bottom, Formula, Top, box, conj, diamond, disj


class UnsupportedQueryError(ValueError):
    """The query falls outside the implemented slice of Lemma 48."""


def _atom_matches(
    atom_spec: Tuple[str, Tuple[object, ...]], label: TreeLabel
) -> bool:
    """Does some atom flag of *label* match the (pred, pattern) spec?

    Pattern entries are either fixed name strings (from constants / core
    bindings) or ``None`` for an existential position; repeated variables
    within the atom must agree, encoded as integer markers.
    """
    predicate, pattern = atom_spec
    for p, args in label.atoms:
        if p != predicate or len(args) != len(pattern):
            continue
        binding: Dict[int, str] = {}
        ok = True
        for slot, name in zip(pattern, args):
            if slot is None:
                continue
            if isinstance(slot, int):  # repeated-variable marker
                if binding.setdefault(slot, name) != name:
                    ok = False
                    break
            elif slot != name:
                ok = False
                break
        if ok:
            return True
    return False


def query_automaton(
    query: CQ,
    alphabet: Alphabet,
    constant_names: Optional[Mapping[Constant, str]] = None,
) -> TWAPA:
    """Build A_{q,l} for a Boolean CQ with ``var≥2(q) = ∅``.

    ``constant_names`` maps the query's constants to the core names that
    denote them in the encoded trees (constants must live in the core,
    which is the paper's constant-free simplification made explicit).
    Raises :class:`UnsupportedQueryError` outside the slice.
    """
    if not query.is_boolean():
        raise UnsupportedQueryError("A_{q,l} is built for Boolean CQs")
    if query.variables_in_multiple_atoms():
        raise UnsupportedQueryError(
            "join variables (var≥2) need the full squid construction; "
            "use decode_tree + evaluate instead"
        )
    constant_names = dict(constant_names or {})
    for c in query.constants():
        if c not in constant_names:
            raise UnsupportedQueryError(
                f"constant {c} needs a core-name binding"
            )

    specs = []
    for a in sorted(query.body, key=str):
        var_marker: Dict[Variable, int] = {}
        pattern = []
        for t in a.args:
            if isinstance(t, Constant):
                pattern.append(constant_names[t])
            else:
                # Repeated variable within the atom → same marker.
                var_marker.setdefault(t, len(var_marker))
                if sum(1 for u in a.args if u == t) > 1:
                    pattern.append(var_marker[t])
                else:
                    pattern.append(None)
        specs.append((a.predicate, tuple(pattern)))

    START = ("q", "start")

    def seek(spec) -> Tuple:
        return ("q", "seek", spec)

    def delta(state, label) -> Formula:
        if not isinstance(label, TreeLabel):
            return Bottom()
        if state == START:
            return conj([diamond(0, seek(s)) for s in specs]) if specs else Top()
        if isinstance(state, tuple) and state[:2] == ("q", "seek"):
            spec = state[2]
            if _atom_matches(spec, label):
                return Top()
            return disj([diamond(-1, state), diamond("*", state)])
        raise ValueError(f"unknown state {state!r}")  # pragma: no cover

    states = frozenset({START} | {seek(s) for s in specs})
    return TWAPA(states, delta, START, {}, name=f"A_{{{query.name},{alphabet.core_size}}}")
