"""Two-way alternating parity automata and the paper's constructions."""

from .consistency import consistency_automaton
from .emptiness import (
    count_accepted_trees,
    enumerate_trees,
    find_accepted_tree,
    is_empty_bounded,
)
from .query_automaton import UnsupportedQueryError, query_automaton
from .twapa import (
    TWAPA,
    And,
    Bottom,
    Formula,
    Move,
    Or,
    Top,
    box,
    conj,
    diamond,
    disj,
)

__all__ = [
    "And",
    "Bottom",
    "Formula",
    "Move",
    "Or",
    "TWAPA",
    "Top",
    "UnsupportedQueryError",
    "box",
    "conj",
    "consistency_automaton",
    "count_accepted_trees",
    "diamond",
    "disj",
    "enumerate_trees",
    "find_accepted_tree",
    "is_empty_bounded",
    "query_automaton",
]
