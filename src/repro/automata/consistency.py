"""The consistency automaton C_{S,l} (Lemma 23).

A 2WAPA that accepts a Γ_{S,l}-labeled tree iff it is *consistent* (the
five conditions before Lemma 41).  Conditions (1)–(3) are local to a node,
(4) relates a node to its parent, and (5) is the interesting one: every
non-root node's name set must be guarded by an atom at some node reachable
through a path along which all those names stay present — implemented as a
reachability sub-automaton whose states carry the sought name set, exactly
the "exponentially many states in ar(S)" the paper's proof sketch
describes (here: one state per name subset actually encountered).
"""

from __future__ import annotations

from typing import FrozenSet, Set, Tuple

from ..trees.ctree import Alphabet, TreeLabel
from .twapa import (
    TWAPA,
    Bottom,
    Formula,
    Top,
    box,
    conj,
    diamond,
    disj,
)

_CHECK_ROOT = ("consistency", "root")
_CHECK_NODE = ("consistency", "node")


def _guard_state(names: FrozenSet[str]):
    return ("guard", names)


def _core_persist_state(name: str):
    return ("core-up", name)


def _local_ok(label: TreeLabel, alphabet: Alphabet, is_root: bool) -> bool:
    """Conditions (1)–(3), which need no tree moves."""
    core = set(alphabet.core_names)
    limit = alphabet.core_size if is_root else alphabet.schema.max_arity
    if len(label.names) > limit:
        return False
    if is_root and not label.names <= core:
        return False
    if not label.names <= set(alphabet.all_names):
        return False
    for p, args in label.atoms:
        if p not in alphabet.schema:
            return False
        if alphabet.schema.arity(p) != len(args):
            return False
        if not set(args) <= label.names:
            return False
    if (label.names & core) != label.core_names:
        return False
    if not label.core_names <= label.names:
        return False
    return True


def consistency_automaton(alphabet: Alphabet) -> TWAPA:
    """Build C_{S,l}: accepts exactly the consistent Γ_{S,l}-labeled trees."""

    def delta(state, label) -> Formula:
        if not isinstance(label, TreeLabel):
            return Bottom()
        if state == _CHECK_ROOT:
            if not _local_ok(label, alphabet, is_root=True):
                return Bottom()
            return box("*", _CHECK_NODE)
        if state == _CHECK_NODE:
            if not _local_ok(label, alphabet, is_root=False):
                return Bottom()
            parts = [box("*", _CHECK_NODE)]
            # (4): every core flag here must persist at the parent.
            for name in sorted(label.core_names):
                parts.append(diamond(-1, _core_persist_state(name)))
            # (5): the full name set must find a connected guard.
            if label.names:
                parts.append(diamond(0, _guard_state(frozenset(label.names))))
            return conj(parts)
        if isinstance(state, tuple) and state[0] == "core-up":
            name = state[1]
            return Top() if name in label.core_names else Bottom()
        if isinstance(state, tuple) and state[0] == "guard":
            names = state[1]
            if not names <= label.names:
                return Bottom()  # the path lost a sought name
            if any(names <= set(args) for _, args in label.atoms):
                return Top()
            return disj(
                [diamond(-1, state), diamond("*", state)]
            )
        raise ValueError(f"unknown state {state!r}")  # pragma: no cover

    # The state universe (for bookkeeping; delta is the source of truth).
    states: Set = {_CHECK_ROOT, _CHECK_NODE}
    for name in alphabet.core_names:
        states.add(_core_persist_state(name))
    # Guard states are created on demand per name set; we register the
    # full-name-set family size symbolically via a marker state.
    states.add(("guard", frozenset()))
    return TWAPA(
        frozenset(states), delta, _CHECK_ROOT, {}, name=f"C_{{S,{alphabet.core_size}}}"
    )
