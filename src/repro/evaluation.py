"""OMQ evaluation: the problem ``Eval(C, Q)`` of Section 2.

``Q(D) = cert(q, D, Σ) = q(chase(D, Σ))``.  The evaluator picks a strategy
per fragment:

* **terminating chase** — non-recursive, full/weakly-acyclic sets: chase to
  a fixpoint, evaluate the query (exact);
* **UCQ rewriting** — linear and sticky sets (whose chase may be infinite):
  XRewrite the OMQ and evaluate the rewriting directly over the database
  (exact, Definition 1);
* **bounded chase** — the guarded fallback when neither applies: chase to a
  query-derived depth; sound but flagged ``exact=False`` (the substitution
  for the infinite guarded chase documented in DESIGN.md).

Every result records which strategy produced it and whether it is exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Optional, Sequence, Set, Tuple

from .chase.engine import ChaseBudgetExceeded, chase
from .core.instance import Instance
from .core.omq import OMQ, TGDClass
from .core.terms import Term
from .engine.registry import register_cache
from .fragments.classify import best_class
from .kernel import plan as kernel_plan
from . import obs
from .fragments.weak import is_weakly_acyclic
from .rewriting.xrewrite import (
    RewritingBudgetExceeded,
    RewritingResult,
    xrewrite,
)


@lru_cache(maxsize=512)
def _cached_best_class(sigma: Tuple) -> TGDClass:
    return best_class(sigma)


@lru_cache(maxsize=512)
def _cached_classes(sigma: Tuple) -> frozenset:
    from .fragments.classify import classify

    return frozenset(classify(sigma))


@lru_cache(maxsize=512)
def _cached_weakly_acyclic(sigma: Tuple) -> bool:
    return is_weakly_acyclic(sigma)


@lru_cache(maxsize=256)
def cached_rewriting(omq: OMQ, budget: int) -> RewritingResult:
    """XRewrite with memoization (containment checks hammer the same OMQ).

    Returns a partial result (``complete=False``) instead of raising when
    the budget runs out.  The work (atom) budget scales with the query
    budget so speculative small-budget attempts stay cheap.
    """
    try:
        return xrewrite(
            omq, max_queries=budget, max_total_atoms=20 * budget
        )
    except RewritingBudgetExceeded as exc:
        return exc.partial


# These memo tables are keyed by whole OMQs/tgd tuples and accumulate
# across unrelated inputs; registering them makes repro.clear_caches()
# (and the test suite's isolation fixture) able to reset them.
register_cache("evaluation.best_class", _cached_best_class.cache_clear)
register_cache("evaluation.classes", _cached_classes.cache_clear)
register_cache(
    "evaluation.weakly_acyclic", _cached_weakly_acyclic.cache_clear
)
register_cache("evaluation.rewriting", cached_rewriting.cache_clear)


@dataclass
class EvaluationResult:
    """The answers to an OMQ over a database, with provenance."""

    answers: Set[Tuple[Term, ...]]
    exact: bool
    method: str

    def __contains__(self, answer: Tuple[Term, ...]) -> bool:
        return tuple(answer) in self.answers

    def is_empty(self) -> bool:
        return not self.answers


def default_guarded_depth(omq: OMQ) -> int:
    """The default chase-depth cut-off for the bounded guarded strategy.

    Heuristic: the number of query atoms times (max arity + 1), plus one —
    deep enough for every match whose atoms sit within |q| guarded-subtree
    hops of the database, which covers typical ontologies; increase it for
    adversarial inputs.
    """
    arity = omq.full_schema().max_arity
    size = max(d.size() for d in omq.as_ucq().disjuncts)
    return size * (arity + 1) + 1


def evaluate_omq(
    omq: OMQ,
    database: Instance,
    *,
    method: str = "auto",
    chase_max_steps: int = 200_000,
    chase_max_depth: Optional[int] = None,
    rewriting_budget: int = 20_000,
) -> EvaluationResult:
    """Compute ``Q(D)``.

    ``method`` is ``"auto"``, ``"chase"``, ``"rewriting"`` or
    ``"bounded-chase"``.
    """
    # One span per top-level evaluation; the strategy dispatch below
    # recurses through _evaluate_omq so "auto" does not nest a second span.
    # The planner mode is recorded because it is the one kernel-level knob
    # that changes how this evaluation's joins execute (never what they
    # return) — traces comparing cost vs greedy runs need it on the span.
    with obs.span(
        "evaluate.omq",
        method=method,
        db_atoms=len(database.atoms),
        planner=kernel_plan.default_planner(),
    ) as ev:
        result = _evaluate_omq(
            omq,
            database,
            method=method,
            chase_max_steps=chase_max_steps,
            chase_max_depth=chase_max_depth,
            rewriting_budget=rewriting_budget,
        )
        ev.set("strategy", result.method)
        ev.set("answers", len(result.answers))
        ev.set("exact", result.exact)
        return result


def _evaluate_omq(
    omq: OMQ,
    database: Instance,
    *,
    method: str = "auto",
    chase_max_steps: int = 200_000,
    chase_max_depth: Optional[int] = None,
    rewriting_budget: int = 20_000,
) -> EvaluationResult:
    omq.validate_database(database)
    query = omq.as_ucq()
    if method == "chase":
        try:
            result = chase(database, omq.sigma, max_steps=chase_max_steps)
        except ChaseBudgetExceeded as exc:
            # The truncated chase is a subset of the full one, so evaluating
            # over it under-approximates soundly; flag the result inexact so
            # containment callers degrade negatives to UNKNOWN.
            return EvaluationResult(
                query.evaluate(exc.partial.instance), False, "chase-partial"
            )
        return EvaluationResult(query.evaluate(result.instance), True, "chase")
    if method == "rewriting":
        rewriting = cached_rewriting(omq, rewriting_budget)
        return EvaluationResult(
            rewriting.rewriting.evaluate(database),
            rewriting.complete,
            "rewriting",
        )
    if method == "bounded-chase":
        depth = chase_max_depth or default_guarded_depth(omq)
        result = chase(
            database,
            omq.sigma,
            max_steps=chase_max_steps,
            max_depth=depth,
            partial=True,
        )
        return EvaluationResult(
            query.evaluate(result.instance), result.terminated, "bounded-chase"
        )
    if method != "auto":
        raise ValueError(f"unknown evaluation method: {method}")

    classes = _cached_classes(omq.sigma)
    if TGDClass.EMPTY in classes:
        return EvaluationResult(query.evaluate(database), True, "direct")
    # Any guarantee of chase termination (full tgds, acyclicity, weak
    # acyclicity) makes the chase the exact strategy of choice — checked
    # before the class-preference order so that e.g. full *guarded* sets do
    # not detour through speculative rewriting.
    if (
        TGDClass.FULL in classes
        or TGDClass.NON_RECURSIVE in classes
        or _cached_weakly_acyclic(omq.sigma)
    ):
        return _evaluate_omq(
            omq, database, method="chase", chase_max_steps=chase_max_steps
        )
    if TGDClass.LINEAR in classes or TGDClass.STICKY in classes:
        return _evaluate_omq(
            omq, database, method="rewriting", rewriting_budget=rewriting_budget
        )
    # Guarded / arbitrary: try a rewriting attempt first (database
    # independent, memoized), then a terminating chase, then fall back to
    # the bounded chase.
    rewriting = cached_rewriting(omq, rewriting_budget)
    if rewriting.complete:
        return EvaluationResult(
            rewriting.rewriting.evaluate(database), True, "rewriting"
        )
    # Probe for a terminating chase with a small budget: guarded chases
    # either reach a fixpoint quickly on small databases or run forever.
    probe_steps = min(chase_max_steps, 5_000)
    try:
        result = chase(database, omq.sigma, max_steps=probe_steps)
        return EvaluationResult(query.evaluate(result.instance), True, "chase")
    except ChaseBudgetExceeded:
        pass
    return _evaluate_omq(
        omq,
        database,
        method="bounded-chase",
        chase_max_steps=chase_max_steps,
        chase_max_depth=chase_max_depth,
    )


def certain_answer(
    omq: OMQ,
    database: Instance,
    answer: Sequence[Term] = (),
    **kwargs,
) -> bool:
    """Is *answer* a certain answer of the OMQ over the database?"""
    return tuple(answer) in evaluate_omq(omq, database, **kwargs).answers
