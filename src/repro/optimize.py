"""OMQ minimization — the query-optimization application of containment.

The classical use of containment (the introduction's motivation): shrink a
query without changing its certain answers.

* :func:`minimize_query` cores each disjunct and drops disjuncts that are
  contained, *under the shared ontology*, in another kept disjunct;
* containment checks go through :func:`repro.containment.contains`, so the
  procedure is exact for UCQ-rewritable ontologies and conservative (keeps
  the disjunct) whenever a check comes back UNKNOWN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from .containment.dispatch import contains
from .containment.result import Verdict
from .core.omq import OMQ
from .core.queries import CQ, UCQ


@dataclass
class MinimizationReport:
    """What the minimizer did, disjunct by disjunct."""

    cored_atoms_removed: int = 0
    disjuncts_dropped: Tuple[str, ...] = ()
    checks_unknown: int = 0

    def __str__(self) -> str:
        return (
            f"removed {self.cored_atoms_removed} redundant atoms, dropped "
            f"{len(self.disjuncts_dropped)} subsumed disjunct(s)"
            + (
                f", {self.checks_unknown} check(s) undecided (kept)"
                if self.checks_unknown
                else ""
            )
        )


def _prune_atoms_under_ontology(
    omq: OMQ, disjunct: CQ, report: MinimizationReport, **containment_kwargs
) -> CQ:
    """Drop body atoms the ontology makes redundant.

    Dropping an atom weakens the query (d ⊆ d' always), so d' is equivalent
    to d under Σ iff ``(S, Σ, d') ⊆ (S, Σ, d)`` — one containment check per
    candidate atom, pruned greedily.  E.g. with ``A(x) → B(x)`` the query
    ``B(x) ∧ A(x)`` minimizes to ``A(x)``.
    """
    current = disjunct
    changed = True
    while changed and current.size() > 1:
        changed = False
        for a in sorted(current.body, key=str):
            remaining = tuple(b for b in current.body if b != a)
            try:
                candidate = CQ(current.head, remaining, current.name)
            except Exception:
                continue  # head would become unsafe
            verdict = contains(
                OMQ(omq.data_schema, omq.sigma, candidate, "pruned"),
                OMQ(omq.data_schema, omq.sigma, current, "orig"),
                **containment_kwargs,
            )
            if verdict.verdict is Verdict.CONTAINED:
                current = candidate
                report.cored_atoms_removed += 1
                changed = True
                break
            if verdict.verdict is Verdict.UNKNOWN:
                report.checks_unknown += 1
    return current


def minimize_query(
    omq: OMQ, *, ontology_aware: bool = True, **containment_kwargs
) -> Tuple[OMQ, MinimizationReport]:
    """An equivalent OMQ with a minimized query.

    Sound for any ontology: atoms and disjuncts are only dropped on a
    CONTAINED verdict, and coring preserves per-disjunct equivalence.
    With ``ontology_aware`` (default) body atoms entailed by the rest of
    the disjunct *under Σ* are pruned too.
    """
    report = MinimizationReport()
    cored: List[CQ] = []
    for d in omq.as_ucq().disjuncts:
        c = d.core()
        report.cored_atoms_removed += d.size() - c.size()
        if ontology_aware and omq.sigma:
            c = _prune_atoms_under_ontology(
                omq, c, report, **containment_kwargs
            )
        cored.append(c)

    kept: List[CQ] = []
    dropped: List[str] = []
    for candidate in cored:
        candidate_omq = OMQ(omq.data_schema, omq.sigma, candidate, "cand")
        subsumed = False
        for other in kept:
            other_omq = OMQ(omq.data_schema, omq.sigma, other, "other")
            verdict = contains(candidate_omq, other_omq, **containment_kwargs)
            if verdict.verdict is Verdict.CONTAINED:
                subsumed = True
                dropped.append(str(candidate))
                break
            if verdict.verdict is Verdict.UNKNOWN:
                report.checks_unknown += 1
        if subsumed:
            continue
        survivors: List[CQ] = []
        for other in kept:
            other_omq = OMQ(omq.data_schema, omq.sigma, other, "other")
            verdict = contains(other_omq, candidate_omq, **containment_kwargs)
            if verdict.verdict is Verdict.CONTAINED:
                dropped.append(str(other))
                continue
            if verdict.verdict is Verdict.UNKNOWN:
                report.checks_unknown += 1
            survivors.append(other)
        kept = survivors + [candidate]
    report.disjuncts_dropped = tuple(dropped)

    if len(kept) == 1 and isinstance(omq.query, CQ):
        new_query: object = kept[0]
    else:
        new_query = UCQ(tuple(kept), omq.as_ucq().name)
    return (
        OMQ(omq.data_schema, omq.sigma, new_query, omq.name + "_min"),
        report,
    )
