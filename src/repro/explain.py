"""Certain-answer explanations from chase provenance.

``explain_answer`` replays the chase with its step log and reconstructs,
for a given certain answer, a *derivation forest*: which query disjunct
matched, which chase atoms support each query atom, and — recursively —
which rule applications produced each derived atom from which premises,
bottoming out at database facts.

This is the practical face of the chase's universality: every certain
answer has a finite syntactic justification, and surfacing it is what an
OBDA debugger needs.  Only available when the chase of the database
terminates (non-recursive / full / weakly-acyclic ontologies — exactly the
cases where the chase is the evaluation strategy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .chase.engine import ChaseResult, chase
from .core.atoms import Atom
from .core.homomorphism import homomorphisms
from .core.instance import Instance
from .core.omq import OMQ
from .core.terms import Constant, Term
from . import obs


@dataclass(frozen=True)
class Derivation:
    """One derived (or base) atom with its immediate justification."""

    atom: Atom
    rule: Optional[str]  # None for database facts
    premises: Tuple["Derivation", ...] = ()

    def is_fact(self) -> bool:
        return self.rule is None

    def depth(self) -> int:
        return 0 if self.is_fact() else 1 + max(
            (p.depth() for p in self.premises), default=0
        )

    def facts_used(self) -> Tuple[Atom, ...]:
        """The database facts this derivation ultimately rests on."""
        if self.is_fact():
            return (self.atom,)
        out: List[Atom] = []
        for p in self.premises:
            out.extend(p.facts_used())
        return tuple(dict.fromkeys(out))


@dataclass(frozen=True)
class Explanation:
    """Why *answer* is a certain answer: one derivation per query atom.

    ``decision_id`` cross-links the explanation to its trace: when the
    explanation was built inside an active decision span, it carries the
    root span id of that trace (the same id ``repro trace`` prints and the
    Chrome exporter puts in ``args``), so a derivation forest and the
    phase timings of the run that produced it can be joined offline.
    """

    answer: Tuple[Term, ...]
    disjunct: str
    derivations: Tuple[Derivation, ...]
    decision_id: Optional[str] = None

    def facts_used(self) -> Tuple[Atom, ...]:
        out: List[Atom] = []
        for d in self.derivations:
            out.extend(d.facts_used())
        return tuple(dict.fromkeys(out))

    def max_depth(self) -> int:
        return max((d.depth() for d in self.derivations), default=0)


def _provenance_index(
    result: ChaseResult, sigma
) -> Dict[Atom, Tuple[str, Tuple[Atom, ...]]]:
    """atom → (rule name, premise atoms) for every chase-derived atom."""
    index: Dict[Atom, Tuple[str, Tuple[Atom, ...]]] = {}
    for step in result.log:
        rule = sigma[step.tgd_index]
        assignment = dict(step.trigger)
        premises = tuple(a.substitute(assignment) for a in rule.body)
        label = rule.name or f"rule#{step.tgd_index}"
        for atom in step.added:
            index.setdefault(atom, (label, premises))
    return index


def _derive(
    atom: Atom,
    database: Instance,
    index: Dict[Atom, Tuple[str, Tuple[Atom, ...]]],
    cache: Dict[Atom, Derivation],
) -> Derivation:
    if atom in cache:
        return cache[atom]
    if atom in database:
        node = Derivation(atom, None)
    else:
        rule, premises = index[atom]
        # Mark as in-progress to cut (impossible, but defensive) cycles.
        cache[atom] = Derivation(atom, rule)
        node = Derivation(
            atom,
            rule,
            tuple(_derive(p, database, index, cache) for p in premises),
        )
    cache[atom] = node
    return node


def explain_answer(
    omq: OMQ,
    database: Instance,
    answer: Sequence[Term] = (),
    *,
    max_steps: int = 200_000,
) -> Optional[Explanation]:
    """A derivation-forest explanation of a certain answer, or None.

    Returns None when *answer* is not a certain answer.  Raises
    :class:`repro.chase.ChaseBudgetExceeded` when the chase diverges (use
    the rewriting-based evaluator for those ontologies; its justification
    is the matched rewriting disjunct instead).
    """
    omq.validate_database(database)
    answer = tuple(answer)
    with obs.span("explain.answer", answer=str(answer)) as ex:
        decision_id = obs.current_decision_id()
        result = chase(database, omq.sigma, max_steps=max_steps)
        index = _provenance_index(result, omq.sigma)
        for disjunct in omq.as_ucq().disjuncts:
            fixed: Dict[Term, Term] = {}
            compatible = True
            for head_term, value in zip(disjunct.head, answer):
                if isinstance(head_term, Constant):
                    if head_term != value:
                        compatible = False
                        break
                elif fixed.setdefault(head_term, value) != value:
                    compatible = False
                    break
            if not compatible:
                continue
            for h in homomorphisms(disjunct.body, result.instance, fixed):
                cache: Dict[Atom, Derivation] = {}
                derivations = tuple(
                    _derive(a.substitute(h), database, index, cache)
                    for a in disjunct.body
                )
                ex.set("disjunct", str(disjunct.name))
                return Explanation(
                    answer, str(disjunct), derivations, decision_id
                )
        return None


def format_explanation(explanation: Explanation, indent: str = "  ") -> str:
    """A human-readable rendering of the derivation forest."""
    lines: List[str] = [
        f"answer ({', '.join(str(t) for t in explanation.answer)}) "
        f"via {explanation.disjunct}"
    ]
    if explanation.decision_id:
        lines.append(f"{indent}(decision {explanation.decision_id})")

    def walk(node: Derivation, depth: int) -> None:
        tag = "fact" if node.is_fact() else f"by {node.rule}"
        lines.append(f"{indent * depth}{node.atom}   [{tag}]")
        for p in node.premises:
            walk(p, depth + 1)

    for d in explanation.derivations:
        walk(d, 1)
    return "\n".join(lines)
