"""Clients for the serving tier (stdlib only, like the server).

Two flavours over the same wire protocol:

* :class:`ServeClient` — blocking, built on
  :class:`http.client.HTTPConnection`.  This is what the CLI
  (``repro submit --url``), the benchmark harness, and most tests use.
* :class:`AsyncServeClient` — asyncio streams, for callers already
  inside an event loop (e.g. load generators driving many concurrent
  submissions).

Both raise :class:`ServeError` on protocol-level errors (4xx/5xx with
the server's ``{"error": {code, message}}`` body attached), keep one
connection alive across calls, and expose the SSE stream of a job as an
iterator of ``(event, document)`` pairs.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import socket
import time
from typing import Any, AsyncIterator, Dict, Iterator, List, Optional, Tuple

from . import http as wire


class ServeError(Exception):
    """A non-2xx response from the server."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(f"{status} {code}: {message}")
        self.status = status
        self.code = code
        self.message = message


def _raise_for(status: int, doc: Any) -> None:
    if 200 <= status < 300:
        return
    error = doc.get("error", {}) if isinstance(doc, dict) else {}
    raise ServeError(
        status,
        error.get("code", "error"),
        error.get("message", f"HTTP {status}"),
    )


def _parse_sse(buffer: str) -> Tuple[List[Tuple[str, dict]], str]:
    """Split complete SSE frames off *buffer*; returns (events, rest)."""
    events: List[Tuple[str, dict]] = []
    while "\n\n" in buffer:
        frame, buffer = buffer.split("\n\n", 1)
        event, data = "message", ""
        for line in frame.splitlines():
            if line.startswith("event:"):
                event = line[len("event:"):].strip()
            elif line.startswith("data:"):
                data += line[len("data:"):].strip()
        if data:
            events.append((event, json.loads(data)))
    return events, buffer


class ServeClient:
    """A blocking client speaking the ``/v1`` protocol."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8718,
        *,
        timeout: float = 30.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    @classmethod
    def from_url(cls, url: str, **kwargs) -> "ServeClient":
        """``http://host:port`` (scheme and port optional)."""
        rest = url.split("://", 1)[-1].rstrip("/")
        host, _, port = rest.partition(":")
        return cls(host or "127.0.0.1", int(port) if port else 8718, **kwargs)

    # -- plumbing ----------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        doc: Optional[dict] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Any:
        """One round trip; returns the decoded JSON body."""
        body = json.dumps(doc).encode("utf-8") if doc is not None else None
        send_headers = {"Accept": "application/json"}
        if body is not None:
            send_headers["Content-Type"] = "application/json"
        send_headers.update(headers or {})
        for attempt in (0, 1):  # one retry on a dropped keep-alive socket
            conn = self._connection()
            try:
                conn.request(method, path, body=body, headers=send_headers)
                response = conn.getresponse()
                payload = response.read()
                break
            except (http.client.HTTPException, OSError):
                self.close()
                if attempt:
                    raise
        try:
            decoded = json.loads(payload.decode("utf-8")) if payload else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = {"raw": payload.decode("utf-8", "replace")}
        _raise_for(response.status, decoded)
        return decoded

    # -- the protocol ------------------------------------------------------

    def submit(self, doc: dict) -> dict:
        """POST one job document; returns the job record."""
        return self.request("POST", "/v1/jobs", doc)

    def submit_batch(self, jobs: List[dict]) -> List[dict]:
        return self.request("POST", "/v1/batch", {"jobs": jobs})["jobs"]

    def job(self, job_id: str) -> dict:
        return self.request("GET", f"/v1/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict:
        return self.request("DELETE", f"/v1/jobs/{job_id}")

    def wait(
        self, job_id: str, timeout: float = 60.0, poll_s: float = 0.05
    ) -> dict:
        """Poll until the job reports ``state: done`` (or raise on timeout)."""
        deadline = time.monotonic() + timeout
        while True:
            doc = self.job(job_id)
            if doc.get("state") == "done":
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still pending after {timeout}s"
                )
            time.sleep(poll_s)

    def run(self, doc: dict, timeout: float = 60.0) -> dict:
        """Submit and wait — the one-call convenience most callers want."""
        record = self.submit(doc)
        if record.get("state") == "done":
            return record
        return self.wait(record["id"], timeout=timeout)

    def health(self) -> dict:
        return self.request("GET", "/healthz")

    def metrics(self) -> dict:
        return self.request("GET", "/metrics")

    def metrics_prometheus(self) -> str:
        """The Prometheus text rendering of ``/metrics``."""
        conn = self._connection()
        conn.request(
            "GET", "/metrics?format=prometheus",
            headers={"Accept": "text/plain"},
        )
        response = conn.getresponse()
        payload = response.read().decode("utf-8")
        if response.status != 200:
            raise ServeError(response.status, "metrics", payload[:200])
        return payload

    def debug_profile(self) -> dict:
        """Live latency/profile telemetry (``GET /v1/debug/profile``)."""
        return self.request("GET", "/v1/debug/profile")

    def tenants(self) -> dict:
        return self.request("GET", "/v1/tenants")["tenants"]

    def set_tenants(self, tenants: Dict[str, dict]) -> dict:
        return self.request("PUT", "/v1/tenants", {"tenants": tenants})[
            "tenants"
        ]

    def stream(
        self, job_id: str, timeout: float = 60.0
    ) -> Iterator[Tuple[str, dict]]:
        """Iterate the SSE frames of a job until its ``result`` event.

        Uses a dedicated socket — the server close-frames streams, so the
        keep-alive connection is left untouched.
        """
        with socket.create_connection(
            (self.host, self.port), timeout=timeout
        ) as sock:
            request = (
                f"GET /v1/jobs/{job_id}/stream HTTP/1.1\r\n"
                f"Host: {self.host}\r\n"
                "Accept: text/event-stream\r\n"
                "Connection: close\r\n\r\n"
            )
            sock.sendall(request.encode("ascii"))
            buffer = b""
            while b"\r\n\r\n" not in buffer:
                chunk = sock.recv(4096)
                if not chunk:
                    raise ServeError(0, "eof", "connection closed in headers")
                buffer += chunk
            head, _, rest = buffer.partition(b"\r\n\r\n")
            status = int(head.split(None, 2)[1])
            if status != 200:
                raise ServeError(status, "stream", head.decode("latin-1"))
            text = rest.decode("utf-8")
            while True:
                events, text = _parse_sse(text)
                for event, doc in events:
                    yield event, doc
                    if event == "result":
                        return
                chunk = sock.recv(4096)
                if not chunk:
                    return
                text += chunk.decode("utf-8")


class AsyncServeClient:
    """The same protocol over asyncio streams (one request per call)."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8718) -> None:
        self.host = host
        self.port = port

    async def request(
        self, method: str, path: str, doc: Optional[dict] = None
    ) -> Any:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            body = (
                json.dumps(doc).encode("utf-8") if doc is not None else b""
            )
            head = (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}\r\n"
                "Accept: application/json\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("ascii") + body)
            await writer.drain()
            raw = await reader.read()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        head_bytes, _, payload = raw.partition(b"\r\n\r\n")
        status = int(head_bytes.split(None, 2)[1])
        try:
            decoded = json.loads(payload.decode("utf-8")) if payload else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = {"raw": payload.decode("utf-8", "replace")}
        _raise_for(status, decoded)
        return decoded

    async def submit(self, doc: dict) -> dict:
        return await self.request("POST", "/v1/jobs", doc)

    async def job(self, job_id: str) -> dict:
        return await self.request("GET", f"/v1/jobs/{job_id}")

    async def cancel(self, job_id: str) -> dict:
        return await self.request("DELETE", f"/v1/jobs/{job_id}")

    async def wait(
        self, job_id: str, timeout: float = 60.0, poll_s: float = 0.05
    ) -> dict:
        deadline = time.monotonic() + timeout
        while True:
            doc = await self.job(job_id)
            if doc.get("state") == "done":
                return doc
            if time.monotonic() >= deadline:
                raise TimeoutError(
                    f"job {job_id} still pending after {timeout}s"
                )
            await asyncio.sleep(poll_s)

    async def run(self, doc: dict, timeout: float = 60.0) -> dict:
        record = await self.submit(doc)
        if record.get("state") == "done":
            return record
        return await self.wait(record["id"], timeout=timeout)

    async def stream(
        self, job_id: str
    ) -> AsyncIterator[Tuple[str, dict]]:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        try:
            request = (
                f"GET /v1/jobs/{job_id}/stream HTTP/1.1\r\n"
                f"Host: {self.host}\r\n"
                "Accept: text/event-stream\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(request.encode("ascii"))
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            status = int(head.split(None, 2)[1])
            if status != 200:
                raise ServeError(status, "stream", head.decode("latin-1"))
            text = ""
            while True:
                chunk = await reader.read(4096)
                if not chunk:
                    return
                text += chunk.decode("utf-8")
                events, text = _parse_sse(text)
                for event, doc in events:
                    yield event, doc
                    if event == "result":
                        return
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


# Re-exported so callers can catch the server-side error type when
# embedding the app without a socket (unit tests, notebooks).
ProtocolError = wire.ProtocolError
