"""Lifecycle of the long-lived serving process.

:class:`ReproServer` wraps one :class:`~repro.serve.app.ServeApp` in an
``asyncio.start_server`` loop:

* **startup** — builds the :class:`~repro.engine.BatchEngine` from a
  :class:`ServeConfig` (workers, cache backend, catalog, deadline floor),
  loads the tenant config file, binds the socket (``port=0`` picks a free
  port, reported on :attr:`ReproServer.port`);
* **request loop** — HTTP/1.1 keep-alive per connection; every request
  gets a request id and one structured log line (``rid method path
  status duration``) on the ``repro.serve`` logger, plus
  ``serve.http.*`` counters and a latency timer;
* **drain-on-SIGTERM** — the first SIGTERM/SIGINT flips the app into
  draining (new work answers 503, ``/healthz`` reports it), stops
  accepting connections, waits up to ``drain_grace_s`` for in-flight
  requests to finish, then closes the engine (pool, cache, catalog).
  A second signal abandons the grace period.

``python -m repro serve`` is the CLI entry (see :func:`run`).
"""

from __future__ import annotations

import asyncio
import itertools
import logging
import signal
import time
import uuid
from dataclasses import dataclass
from typing import Optional

from ..engine.engine import BatchEngine
from ..engine.scheduler import DeadlinePolicy
from ..obs import TraceConfig
from . import http
from .app import ServeApp
from .protocol import TenantTable

logger = logging.getLogger("repro.serve")

#: Default port; "8718" ≈ PODS'18, where the source paper appeared.
DEFAULT_PORT = 8718


@dataclass
class ServeConfig:
    """Everything ``repro serve`` needs to build and run a replica."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    workers: int = 1
    task_timeout: Optional[float] = None
    cache_dir: Optional[str] = None
    cache_backend: str = "sqlite"
    catalog: Optional[str] = None
    witness_store: Optional[str] = None
    #: Witness replay mode for the store: "exact", "structural", or "off".
    witness_replay: str = "structural"
    tenants_file: Optional[str] = None
    deadline_floor_s: float = 0.25
    drain_grace_s: float = 5.0
    heartbeat_s: float = 0.25
    allow_test_jobs: bool = False
    max_body: int = http.MAX_BODY
    #: Span tracing for served jobs: "off", "always", or "per-job"
    #: (sampled — every ``trace_sample``-th submission).  Traced
    #: decisions feed ``GET /v1/debug/profile``; ``max_traces`` bounds
    #: the engine's trace sink so a long-lived replica can't leak.
    trace_mode: str = "off"
    trace_sample: int = 10
    max_traces: int = 512

    def build_engine(self) -> BatchEngine:
        return BatchEngine(
            cache_dir=self.cache_dir,
            workers=self.workers,
            task_timeout=self.task_timeout,
            cache_backend=self.cache_backend,
            catalog=self.catalog,
            witness_store=self.witness_store,
            witness_replay=(
                self.witness_replay if self.witness_store else None
            ),
            deadline_policy=DeadlinePolicy(floor_s=self.deadline_floor_s),
            trace=(
                None
                if self.trace_mode == "off"
                else TraceConfig(
                    mode=self.trace_mode, sample_every=self.trace_sample
                )
            ),
            max_traces=self.max_traces,
        )

    def build_tenants(self) -> TenantTable:
        if self.tenants_file:
            return TenantTable.load(self.tenants_file)
        return TenantTable()


class ReproServer:
    """One serving replica: a socket, an app, and a drain protocol."""

    def __init__(
        self,
        config: Optional[ServeConfig] = None,
        *,
        engine: Optional[BatchEngine] = None,
        app: Optional[ServeApp] = None,
    ) -> None:
        self.config = config or ServeConfig()
        self._owns_engine = engine is None and app is None
        if app is not None:
            self.app = app
        else:
            self.app = ServeApp(
                engine if engine is not None else self.config.build_engine(),
                self.config.build_tenants(),
                allow_test_jobs=self.config.allow_test_jobs,
                heartbeat_s=self.config.heartbeat_s,
            )
        self.port: Optional[int] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._active = 0
        self._idle: Optional[asyncio.Event] = None
        self._closed: Optional[asyncio.Event] = None
        self._rid_prefix = uuid.uuid4().hex[:6]
        self._rid = itertools.count(1)

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting; sets :attr:`port`."""
        self._idle = asyncio.Event()
        self._idle.set()
        self._closed = asyncio.Event()
        self._server = await asyncio.start_server(
            self._on_client,
            host=self.config.host,
            port=self.config.port,
            limit=http.MAX_REQUEST_LINE * 2,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info(
            "listening on %s:%s (workers=%d, deadline floor %.3fs)",
            self.config.host,
            self.port,
            self.app.engine.pool.workers,
            self.app.engine.scheduler.deadline_policy.floor_s,
        )

    async def wait_closed(self) -> None:
        """Block until :meth:`shutdown` has completed."""
        assert self._closed is not None, "server not started"
        await self._closed.wait()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting, drain in-flight requests, close the engine."""
        if self._closed is None or self._closed.is_set():
            return
        if self.app.draining:
            drain = False  # second signal: abandon the grace period
        self.app.draining = True
        logger.info(
            "shutdown: draining %d active connection(s)%s",
            self._active,
            "" if drain else " (no grace)",
        )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if drain and self._active:
            try:
                await asyncio.wait_for(
                    self._idle.wait(), self.config.drain_grace_s
                )
            except asyncio.TimeoutError:
                logger.warning(
                    "drain grace of %.1fs expired with %d connection(s) "
                    "still active",
                    self.config.drain_grace_s,
                    self._active,
                )
        if self._owns_engine:
            # engine.close joins pool threads; keep the loop responsive.
            await asyncio.get_running_loop().run_in_executor(
                None, self.app.engine.close
            )
        self._closed.set()
        logger.info("shutdown complete")

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain (second signal: immediate)."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    sig, lambda: asyncio.ensure_future(self.shutdown())
                )
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix event loops

    async def run(self) -> None:
        """start → handle signals → serve until shutdown completes."""
        await self.start()
        self.install_signal_handlers()
        await self.wait_closed()

    # -- the connection handler -------------------------------------------

    async def _on_client(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._active += 1
        self._idle.clear()
        try:
            await self._serve_connection(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange; nothing to answer
        finally:
            self._active -= 1
            if self._active == 0:
                self._idle.set()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            try:
                request = await http.read_request(
                    reader, max_body=self.config.max_body
                )
            except http.ProtocolError as exc:
                self.app.metrics.counter("serve.http.bad_requests").inc()
                response = http.Response.error(
                    exc.status, exc.code, exc.message
                )
                await http.write_response(
                    writer, response, keep_alive=False
                )
                return
            if request is None:
                return
            rid = f"{self._rid_prefix}-{next(self._rid):06d}"
            started = time.perf_counter()
            response = await self.app.handle_request(request)
            persistent = await http.write_response(
                writer, response, keep_alive=request.keep_alive
            )
            elapsed = time.perf_counter() - started
            self.app.metrics.counter("serve.http.requests").inc()
            self.app.metrics.timer("serve.http.request_time").observe(elapsed)
            if response.status >= 500:
                self.app.metrics.counter("serve.http.errors").inc()
            logger.info(
                "rid=%s %s %s -> %d (%.1fms)",
                rid,
                request.method,
                request.path,
                response.status,
                elapsed * 1000.0,
            )
            if not persistent:
                return


def run(config: Optional[ServeConfig] = None) -> int:
    """Blocking entry point used by ``repro serve``."""
    server = ReproServer(config)
    try:
        asyncio.run(server.run())
    except KeyboardInterrupt:  # pragma: no cover - signal path covers this
        pass
    return 0
