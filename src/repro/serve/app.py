"""The request router and handlers of the serving tier.

:class:`ServeApp` owns the job table and maps the wire protocol onto the
engine's scheduler.  It is transport-free — `server.py` feeds it parsed
:class:`~repro.serve.http.Request` objects and writes back the
:class:`~repro.serve.http.Response` it returns — which is what makes the
handlers unit-testable without a socket.

Endpoints::

    POST   /v1/jobs          submit one job  (202 pending | 200 done)
    GET    /v1/jobs/<id>     poll a job
    GET    /v1/jobs/<id>/stream   SSE: status heartbeats, then the result
    DELETE /v1/jobs/<id>     cancel (reports coalesced_onto survivor)
    POST   /v1/batch         submit many jobs in one request
    GET    /v1/tenants       the live tenant table
    PUT    /v1/tenants       merge tenant policies (weights apply live)
    GET    /healthz          liveness + drain state
    GET    /metrics          unified snapshot (JSON | Prometheus text)
    GET    /v1/debug/profile    live latency percentiles + span profile

Scheduling semantics: the submitting tenant is the scheduler's
*submitter* (so per-tenant weighted fair share applies), the tenant's
priority class rides each submission, and ``deadline_ms`` (explicit or
the tenant default) arms the scheduler's
:class:`~repro.engine.scheduler.DeadlinePolicy` — a budget that cannot
cover a fresh decision degrades through catalog → cache → UNKNOWN with
reason ``"deadline"`` instead of queueing behind an expensive chase.

Accounting: every tenant gets ``serve.requests.<tenant>.{submitted,
completed,cached,coalesced,cancelled,deadline,failed}`` counters in the
engine's registry, so ``/metrics`` exposes them alongside the
engine/kernel/obs families in both formats.  Completions additionally
feed a per-``(tenant, kind)`` latency :class:`Histogram` (each bucket
keeps the decision id of its latest hit as an exemplar) and — when the
engine traces — a live :class:`~repro.obs.profile.ProfileAccumulator`;
``GET /v1/debug/profile`` serves both.
"""

from __future__ import annotations

import asyncio
import itertools
import threading
import time
import uuid
from dataclasses import dataclass
from typing import Any, AsyncIterator, Dict, Optional

from ..engine.engine import BatchEngine
from ..engine.metrics import LATENCY_BUCKETS, render_prometheus
from ..engine.pool import CANCELLED
from ..engine.scheduler import DEADLINE, JobHandle
from ..obs.profile import ProfileAccumulator
from .http import ProtocolError, Request, Response, sse_event
from .protocol import (
    ERR_METHOD,
    ERR_NOT_FOUND,
    JobSpec,
    TenantTable,
    envelope,
    latency_to_json,
    parse_job_spec,
    result_to_json,
)


@dataclass
class JobRecord:
    """One accepted submission: its id, envelope, and live handle."""

    id: str
    spec: JobSpec
    handle: JobHandle
    submitted_at: float
    deadline_ms: Optional[int]


class ServeApp:
    """Routes requests onto one :class:`~repro.engine.BatchEngine`."""

    def __init__(
        self,
        engine: BatchEngine,
        tenants: Optional[TenantTable] = None,
        *,
        allow_test_jobs: bool = False,
        heartbeat_s: float = 0.25,
        max_jobs: int = 100_000,
    ) -> None:
        self.engine = engine
        self.metrics = engine.metrics
        self.tenants = tenants or TenantTable()
        self.allow_test_jobs = allow_test_jobs
        self.heartbeat_s = heartbeat_s
        self.max_jobs = max_jobs
        self.draining = False
        self._lock = threading.Lock()
        self._jobs: Dict[str, JobRecord] = {}
        self._job_of_handle: Dict[int, str] = {}
        self._order: list = []
        self._seq = itertools.count(1)
        self._instance = uuid.uuid4().hex[:8]
        # Latency histograms are keyed by (tenant, kind) tuple here —
        # never parsed back out of the registry name, since tenant ids
        # may contain dots.
        self._latency: Dict[Any, Any] = {}
        self._profile = ProfileAccumulator()
        self._profile_lock = threading.Lock()
        for name in self.tenants.names():
            self._apply_policy(name)

    # -- tenant plumbing ---------------------------------------------------

    def _apply_policy(self, tenant: str) -> None:
        policy = self.tenants.get(tenant)
        self.engine.scheduler.set_weight(tenant, policy.weight)

    def _tenant_counter(self, tenant: str, event: str):
        return self.metrics.counter(f"serve.requests.{tenant}.{event}")

    # -- the job table -----------------------------------------------------

    def _new_job_id(self) -> str:
        return f"j-{self._instance}-{next(self._seq):06d}"

    def _remember(self, record: JobRecord) -> None:
        with self._lock:
            self._jobs[record.id] = record
            self._job_of_handle[id(record.handle)] = record.id
            self._order.append(record.id)
            # Bounded memory: retire the oldest *finished* records once
            # over budget (live handles are never evicted).
            while len(self._jobs) > self.max_jobs:
                for i, job_id in enumerate(self._order):
                    old = self._jobs.get(job_id)
                    if old is not None and old.handle.done():
                        del self._order[i]
                        del self._jobs[job_id]
                        self._job_of_handle.pop(id(old.handle), None)
                        break
                else:
                    break

    def get_job(self, job_id: str) -> Optional[JobRecord]:
        with self._lock:
            return self._jobs.get(job_id)

    def _job_id_of_handle(self, handle: Optional[JobHandle]) -> Optional[str]:
        if handle is None:
            return None
        with self._lock:
            return self._job_of_handle.get(id(handle))

    # -- submission --------------------------------------------------------

    def submit(self, doc: dict) -> JobRecord:
        """Parse and submit one job document; returns its record."""
        spec = parse_job_spec(doc, allow_test_jobs=self.allow_test_jobs)
        policy = self.tenants.get(spec.tenant)
        self._apply_policy(spec.tenant)
        deadline_ms = (
            spec.deadline_ms
            if spec.deadline_ms is not None
            else policy.default_deadline_ms
        )
        tenant = spec.tenant
        self._tenant_counter(tenant, "submitted").inc()
        handle = self.engine.submit(
            spec.job,
            priority=spec.priority if spec.priority is not None
            else policy.priority,
            submitter=tenant,
            deadline=deadline_ms / 1000.0 if deadline_ms else None,
        )
        record = JobRecord(
            id=self._new_job_id(),
            spec=spec,
            handle=handle,
            submitted_at=time.time(),
            deadline_ms=deadline_ms,
        )
        self._remember(record)
        handle.add_done_callback(
            lambda h, record=record: self._account_done(record, h)
        )
        return record

    def _account_done(self, record: JobRecord, handle: JobHandle) -> None:
        result = handle.result(0)
        tenant = record.spec.tenant
        if result.error == CANCELLED:
            event = "cancelled"
        elif result.error == DEADLINE:
            event = "deadline"
        elif result.error is not None:
            event = "failed"
        elif result.cached:
            event = "cached"
        elif result.coalesced:
            event = "coalesced"
        else:
            event = "completed"
        self._tenant_counter(tenant, event).inc()
        kind = getattr(record.spec.job, "kind", "?")
        key = (tenant, kind)
        with self._lock:
            hist = self._latency.get(key)
            if hist is None:
                hist = self._latency[key] = self.metrics.histogram(
                    f"serve.latency.{tenant}.{kind}", buckets=LATENCY_BUCKETS
                )
        trace = result.trace
        hist.observe(
            result.duration,
            exemplar=trace["id"] if trace is not None else record.id,
        )
        if trace is not None:
            with self._profile_lock:
                self._profile.add_root(trace)

    def job_to_json(self, record: JobRecord) -> dict:
        handle = record.handle
        out: Dict[str, Any] = {
            "id": record.id,
            "tenant": record.spec.tenant,
            "kind": getattr(record.spec.job, "kind", "?"),
            "label": record.spec.label,
            "state": "done" if handle.done() else "pending",
            "deadline_ms": record.deadline_ms,
        }
        primary = self._job_id_of_handle(handle.coalesced_onto)
        if primary is not None:
            out["coalesced_onto"] = primary
        if handle.done():
            result = handle.result(0)
            out["cached"] = result.cached
            out["coalesced"] = result.coalesced
            out["error"] = result.error
            out["duration_ms"] = round(result.duration * 1000.0, 3)
            out["result"] = result_to_json(record.spec.job, result.value)
        return out

    # -- routing -----------------------------------------------------------

    async def handle_request(self, request: Request) -> Response:
        """Dispatch one request; never raises (errors become responses)."""
        try:
            return await self._route(request)
        except ProtocolError as exc:
            return Response.error(exc.status, exc.code, exc.message)
        except Exception as exc:  # the connection must survive handler bugs
            self.metrics.counter("serve.http.errors").inc()
            return Response.error(
                500, "internal", f"{type(exc).__name__}: {exc}"
            )

    async def _route(self, request: Request) -> Response:
        method, path = request.method, request.path.rstrip("/") or "/"
        if path == "/healthz":
            return self._health(method)
        if path == "/metrics":
            return self._metrics(request, method)
        if path == "/v1/tenants":
            return self._tenants(request, method)
        if path == "/v1/debug/profile":
            return self._debug_profile(method)
        if path == "/v1/jobs" and method == "POST":
            self._refuse_if_draining()
            return self._submit_response(self.submit(request.json()))
        if path == "/v1/batch" and method == "POST":
            self._refuse_if_draining()
            return self._batch(request)
        if path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/stream"):
                job_id, tail = rest[: -len("/stream")], "stream"
            else:
                job_id, tail = rest, ""
            if not job_id or "/" in job_id:
                raise ProtocolError(404, ERR_NOT_FOUND, f"no route {path!r}")
            record = self.get_job(job_id)
            if record is None:
                raise ProtocolError(
                    404, ERR_NOT_FOUND, f"unknown job {job_id!r}"
                )
            if tail == "stream":
                if method != "GET":
                    raise ProtocolError(
                        405, ERR_METHOD, f"{method} not allowed on stream"
                    )
                return Response(
                    content_type="text/event-stream",
                    stream=self._stream_job(record),
                )
            if method == "GET":
                return Response.json(envelope(self.job_to_json(record)))
            if method == "DELETE":
                return self._cancel(record)
            raise ProtocolError(
                405, ERR_METHOD, f"{method} not allowed on a job"
            )
        raise ProtocolError(
            404, ERR_NOT_FOUND, f"no route for {method} {path!r}"
        )

    def _refuse_if_draining(self) -> None:
        if self.draining:
            raise ProtocolError(
                503, "draining", "server is draining; not accepting work"
            )

    # -- handlers ----------------------------------------------------------

    def _submit_response(self, record: JobRecord) -> Response:
        doc = envelope(self.job_to_json(record))
        # A submission resolved on the cheap ladder (catalog, cache, or
        # deadline degrade) answers 200 with the result inline; anything
        # still in flight is a 202.
        return Response.json(doc, status=200 if record.handle.done() else 202)

    def _batch(self, request: Request) -> Response:
        doc = request.json()
        jobs = doc.get("jobs")
        if not isinstance(jobs, list) or not jobs:
            raise ProtocolError(
                400, "bad_field", "field 'jobs' must be a non-empty array"
            )
        records = [self.submit(entry) for entry in jobs]
        return Response.json(
            envelope({"jobs": [self.job_to_json(r) for r in records]}),
            status=202 if any(not r.handle.done() for r in records) else 200,
        )

    def _cancel(self, record: JobRecord) -> Response:
        cancelled = record.handle.cancel()
        if cancelled:
            self.metrics.counter("serve.cancelled").inc()
        doc: Dict[str, Any] = {
            "id": record.id,
            "cancelled": cancelled,
            "state": "done",
        }
        survivor = self._job_id_of_handle(record.handle.coalesced_onto)
        if survivor is not None:
            # The computation this handle rode on keeps running for its
            # primary submitter; report who that is.
            doc["coalesced_onto"] = survivor
        return Response.json(envelope(doc))

    def _health(self, method: str) -> Response:
        if method not in ("GET", "HEAD"):
            raise ProtocolError(405, ERR_METHOD, "use GET /healthz")
        with self._lock:
            jobs = len(self._jobs)
        return Response.json(
            envelope(
                {
                    "status": "draining" if self.draining else "ok",
                    "jobs": jobs,
                    "workers": self.engine.pool.workers,
                }
            ),
            status=503 if self.draining else 200,
        )

    def _metrics(self, request: Request, method: str) -> Response:
        if method != "GET":
            raise ProtocolError(405, ERR_METHOD, "use GET /metrics")
        stats = self.engine.stats()
        snapshot = stats["metrics"]
        accept = request.headers.get("accept", "")
        fmt = request.query.get("format")
        prometheus = fmt == "prometheus" or (
            fmt is None
            and "text/plain" in accept
            and "application/json" not in accept
        )
        if prometheus:
            return Response(
                body=render_prometheus(snapshot).encode("utf-8"),
                content_type="text/plain; version=0.0.4",
            )
        return Response.json(
            envelope(
                {
                    "metrics": snapshot,
                    "cache": stats["cache"],
                    "catalog": stats.get("catalog"),
                    "witness_store": stats.get("witness_store"),
                }
            )
        )

    def _debug_profile(self, method: str) -> Response:
        """Live telemetry: per-tenant/kind latency summaries (count,
        mean, p50/p95/p99, bucket exemplars) plus the span profile
        aggregated from every traced decision since startup."""
        if method != "GET":
            raise ProtocolError(405, ERR_METHOD, "use GET /v1/debug/profile")
        with self._lock:
            latencies = dict(self._latency)
        trace_config = self.engine.trace_config
        with self._profile_lock:
            decisions = self._profile.decisions
            profile = self._profile.profile(
                meta={
                    "source": "serve.live",
                    "trace_mode": (
                        trace_config.mode if trace_config is not None
                        else "off"
                    ),
                }
            )
        return Response.json(
            envelope(
                {
                    "latency": latency_to_json(latencies),
                    "traced_decisions": decisions,
                    "profile": profile,
                }
            )
        )

    def _tenants(self, request: Request, method: str) -> Response:
        if method == "GET":
            return Response.json(
                envelope({"tenants": self.tenants.to_json()})
            )
        if method != "PUT":
            raise ProtocolError(405, ERR_METHOD, "use GET or PUT /v1/tenants")
        doc = request.json()
        changed = self.tenants.update_from_json(doc.get("tenants", doc))
        for name in changed:
            self._apply_policy(name)
        self.metrics.counter("serve.tenants.updates").inc()
        return Response.json(envelope({"tenants": self.tenants.to_json()}))

    # -- streaming ---------------------------------------------------------

    async def _stream_job(self, record: JobRecord) -> AsyncIterator[bytes]:
        """SSE: a ``status`` frame now, heartbeats while pending, then the
        terminal ``result`` frame."""
        yield sse_event("status", envelope(self.job_to_json(record)))
        handle = record.handle
        if not handle.done():
            loop = asyncio.get_running_loop()
            done = loop.create_future()

            def _resolved(_h: JobHandle) -> None:
                loop.call_soon_threadsafe(
                    lambda: done.done() or done.set_result(True)
                )

            handle.add_done_callback(_resolved)
            while not handle.done():
                try:
                    await asyncio.wait_for(
                        asyncio.shield(done), self.heartbeat_s
                    )
                except asyncio.TimeoutError:
                    yield sse_event(
                        "status", envelope(self.job_to_json(record))
                    )
        yield sse_event("result", envelope(self.job_to_json(record)))
