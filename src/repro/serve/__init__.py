"""repro.serve — containment-as-a-service.

A long-lived asyncio HTTP front-end over the batch engine: multi-tenant
job submission with per-tenant fair-share weights and priority classes,
deadline-aware graceful degradation (catalog → cache → UNKNOWN with
reason ``"deadline"``), Server-Sent Events streaming, and a unified
``/metrics`` endpoint (JSON and Prometheus text).

Layering::

    http.py      minimal HTTP/1.1 over asyncio streams (no deps)
    protocol.py  the versioned JSON wire schema + tenant policies
    app.py       the router: job table, handlers, SSE, accounting
    server.py    lifecycle: bind, keep-alive loop, drain-on-SIGTERM
    client.py    blocking + asyncio clients over the same protocol

Start a replica with ``repro serve``; talk to it with
``repro submit --url`` or :class:`ServeClient`.
"""

from .app import ServeApp
from .client import AsyncServeClient, ServeClient, ServeError
from .http import ProtocolError, Request, Response
from .protocol import (
    PROTOCOL_VERSION,
    JobSpec,
    TenantPolicy,
    TenantTable,
    parse_job_spec,
)
from .server import DEFAULT_PORT, ReproServer, ServeConfig, run

__all__ = [
    "AsyncServeClient",
    "DEFAULT_PORT",
    "JobSpec",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ReproServer",
    "Request",
    "Response",
    "ServeApp",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "TenantPolicy",
    "TenantTable",
    "parse_job_spec",
    "run",
]
