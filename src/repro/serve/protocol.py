"""The versioned JSON wire schema of the serving tier.

Everything a byte crosses the wire as lives here, so `app.py`,
`client.py`, the CLI, and the tests agree by construction:

* **job submissions** — :func:`parse_job_spec` turns a request document
  into an engine job plus its scheduling envelope (tenant, priority,
  deadline).  OMQs travel as the sectioned text format of
  :func:`repro.core.parser.parse_omq` (``q1``/``q2`` fields), the same
  documents the CLI reads from disk, so any existing ``.omq`` file can be
  POSTed verbatim;
* **results** — :func:`result_to_json` renders a
  :class:`~repro.engine.jobs.JobResult` value; containment verdicts use
  the lossless witness round-trip of
  :mod:`repro.core.serialize` (``containment_result_to_json``);
* **tenants** — :class:`TenantPolicy` / :class:`TenantTable`: per-tenant
  fair-share weight, priority class, and default deadline, loadable from
  a JSON config file and editable live via ``PUT /v1/tenants``.

Every response envelope carries ``"protocol": PROTOCOL_VERSION``; a
client seeing a higher major version than it understands should refuse
rather than guess.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from threading import RLock
from typing import Any, Dict, Optional

from ..core.parser import parse_omq
from ..core.serialize import containment_result_to_json
from ..engine.jobs import ContainmentJob, SleepJob
from ..engine.metrics import histogram_quantiles
from ..engine.scheduler import Priority, _coerce_priority
from .http import ProtocolError

#: Version stamp on every response envelope.  Bump on breaking changes to
#: the job/result/tenant document shapes.
PROTOCOL_VERSION = 1

#: Error codes the server emits (stable — clients may switch on them).
ERR_BAD_JSON = "bad_json"
ERR_BAD_OMQ = "bad_omq"
ERR_BAD_FIELD = "bad_field"
ERR_NOT_FOUND = "not_found"
ERR_METHOD = "method_not_allowed"
ERR_DRAINING = "draining"


def envelope(doc: Dict[str, Any]) -> Dict[str, Any]:
    """Stamp the protocol version onto a response document."""
    return {"protocol": PROTOCOL_VERSION, **doc}


# ---------------------------------------------------------------------------
# Tenants
# ---------------------------------------------------------------------------


@dataclass
class TenantPolicy:
    """How one tenant's submissions are scheduled.

    ``weight`` feeds :meth:`repro.engine.scheduler.Scheduler.set_weight`
    (stride fair share: weight 2 gets twice the contended slots of
    weight 1); ``priority`` is the submitted dispatch class; and
    ``default_deadline_ms`` applies when a request carries no explicit
    ``deadline_ms`` — the knob that makes an interactive tenant degrade
    rather than queue behind a 2ExpTime chase.
    """

    weight: float = 1.0
    priority: Priority = Priority.NORMAL
    default_deadline_ms: Optional[int] = None

    def to_json(self) -> Dict[str, Any]:
        return {
            "weight": self.weight,
            "priority": self.priority.name.lower(),
            "default_deadline_ms": self.default_deadline_ms,
        }

    @classmethod
    def from_json(cls, doc: Dict[str, Any]) -> "TenantPolicy":
        if not isinstance(doc, dict):
            raise ProtocolError(
                400, ERR_BAD_FIELD, "tenant policy must be an object"
            )
        try:
            weight = float(doc.get("weight", 1.0))
            priority = _coerce_priority(doc.get("priority", "normal"))
        except (TypeError, ValueError) as exc:
            raise ProtocolError(400, ERR_BAD_FIELD, str(exc)) from None
        if weight <= 0:
            raise ProtocolError(
                400, ERR_BAD_FIELD,
                f"tenant weight must be positive, got {weight}",
            )
        deadline = doc.get("default_deadline_ms")
        if deadline is not None:
            try:
                deadline = int(deadline)
            except (TypeError, ValueError):
                raise ProtocolError(
                    400, ERR_BAD_FIELD,
                    f"default_deadline_ms must be an integer, "
                    f"got {doc.get('default_deadline_ms')!r}",
                ) from None
            if deadline <= 0:
                raise ProtocolError(
                    400, ERR_BAD_FIELD,
                    "default_deadline_ms must be positive",
                )
        return cls(
            weight=weight, priority=priority, default_deadline_ms=deadline
        )


class TenantTable:
    """The live tenant registry (thread-safe; the app mutates it via PUT).

    Unknown tenants get a fresh default policy on first sight, so the
    server never rejects a new tenant id — it just schedules it at
    weight 1 / NORMAL until an operator says otherwise.
    """

    def __init__(
        self, policies: Optional[Dict[str, TenantPolicy]] = None
    ) -> None:
        self._lock = RLock()
        self._policies: Dict[str, TenantPolicy] = dict(policies or {})

    def get(self, tenant: str) -> TenantPolicy:
        with self._lock:
            policy = self._policies.get(tenant)
            if policy is None:
                policy = self._policies[tenant] = TenantPolicy()
            return policy

    def names(self) -> list:
        with self._lock:
            return sorted(self._policies)

    def update_from_json(
        self, doc: Dict[str, Any]
    ) -> Dict[str, TenantPolicy]:
        """Merge *doc* (``name -> policy``); returns the changed entries."""
        if not isinstance(doc, dict):
            raise ProtocolError(
                400, ERR_BAD_FIELD, "tenants must be an object"
            )
        changed = {
            str(name): TenantPolicy.from_json(policy)
            for name, policy in doc.items()
        }
        with self._lock:
            self._policies.update(changed)
        return changed

    def to_json(self) -> Dict[str, Any]:
        with self._lock:
            return {
                name: policy.to_json()
                for name, policy in sorted(self._policies.items())
            }

    @classmethod
    def load(cls, path: str) -> "TenantTable":
        """Read a ``{"tenants": {name: policy}}`` (or bare map) JSON file."""
        doc = json.loads(Path(path).read_text(encoding="utf-8"))
        if isinstance(doc, dict) and isinstance(doc.get("tenants"), dict):
            doc = doc["tenants"]
        table = cls()
        table.update_from_json(doc)
        return table


# ---------------------------------------------------------------------------
# Job submissions
# ---------------------------------------------------------------------------


@dataclass
class JobSpec:
    """One parsed submission: the engine job plus its scheduling envelope."""

    job: Any
    tenant: str = "default"
    deadline_ms: Optional[int] = None
    priority: Optional[Priority] = None
    label: str = ""
    fields: Dict[str, Any] = field(default_factory=dict)


def _parse_omq_field(doc: Dict[str, Any], name: str):
    text = doc.get(name)
    if not isinstance(text, str) or not text.strip():
        raise ProtocolError(
            400, ERR_BAD_FIELD,
            f"field {name!r} must be an OMQ document string",
        )
    try:
        return parse_omq(text, name=name)
    except Exception as exc:
        raise ProtocolError(
            422, ERR_BAD_OMQ, f"field {name!r} does not parse: {exc}"
        ) from None


def _optional_int(doc: Dict[str, Any], name: str) -> Optional[int]:
    value = doc.get(name)
    if value is None:
        return None
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise ProtocolError(
            400, ERR_BAD_FIELD, f"field {name!r} must be an integer"
        ) from None
    if value <= 0:
        raise ProtocolError(
            400, ERR_BAD_FIELD, f"field {name!r} must be positive"
        )
    return value


def parse_job_spec(
    doc: Dict[str, Any], *, allow_test_jobs: bool = False
) -> JobSpec:
    """Turn one submission document into a :class:`JobSpec`.

    ``kind`` defaults to ``"containment"`` (fields ``q1``/``q2`` as OMQ
    documents, optional ``rewriting_budget``/``max_steps``/``max_depth``).
    ``kind: "sleep"`` — a job with a known duration, for load tests and
    benchmarks — is only admitted when the server opts in
    (``allow_test_jobs``).
    """
    if not isinstance(doc, dict):
        raise ProtocolError(
            400, ERR_BAD_JSON, "job submission must be a JSON object"
        )
    kind = doc.get("kind", "containment")
    tenant = doc.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError(
            400, ERR_BAD_FIELD, "field 'tenant' must be a non-empty string"
        )
    deadline_ms = _optional_int(doc, "deadline_ms")
    priority: Optional[Priority] = None
    if doc.get("priority") is not None:
        try:
            priority = _coerce_priority(doc["priority"])
        except ValueError as exc:
            raise ProtocolError(400, ERR_BAD_FIELD, str(exc)) from None
    if kind == "containment":
        q1 = _parse_omq_field(doc, "q1")
        q2 = _parse_omq_field(doc, "q2")
        job = ContainmentJob(
            q1,
            q2,
            rewriting_budget=_optional_int(doc, "rewriting_budget"),
            chase_max_steps=_optional_int(doc, "max_steps") or 200_000,
            chase_max_depth=_optional_int(doc, "max_depth"),
        )
        label = f"{q1.name} ⊆ {q2.name}"
    elif kind == "sleep":
        if not allow_test_jobs:
            raise ProtocolError(
                400, ERR_BAD_FIELD,
                "kind 'sleep' requires the server's allow_test_jobs flag",
            )
        try:
            seconds = float(doc.get("seconds", 0.0))
        except (TypeError, ValueError):
            raise ProtocolError(
                400, ERR_BAD_FIELD, "field 'seconds' must be a number"
            ) from None
        if seconds < 0 or seconds > 60:
            raise ProtocolError(
                400, ERR_BAD_FIELD, "field 'seconds' must be in [0, 60]"
            )
        job = SleepJob(seconds, payload=doc.get("payload"))
        label = f"sleep {seconds}s"
    else:
        raise ProtocolError(
            400, ERR_BAD_FIELD, f"unknown job kind {kind!r}"
        )
    return JobSpec(
        job=job,
        tenant=tenant,
        deadline_ms=deadline_ms,
        priority=priority,
        label=label,
        fields={
            k: doc[k]
            for k in ("deadline_ms", "priority")
            if doc.get(k) is not None
        },
    )


def latency_to_json(latencies: Dict[Any, Any]) -> Dict[str, Any]:
    """``tenant -> kind -> summary`` from per-``(tenant, kind)`` histograms.

    Each summary carries the call count, mean/max, interpolated
    p50/p95/p99 (:func:`repro.engine.metrics.histogram_quantiles`), and —
    when the histogram recorded any — per-bucket decision-id exemplars,
    so a slow bucket links straight back to its span tree.  Latencies are
    keyed by tuple, not parsed out of metric names, because tenant ids
    may themselves contain dots.
    """
    out: Dict[str, Any] = {}
    for (tenant, kind), hist in sorted(latencies.items()):
        snap = hist.snapshot()
        if not snap.get("count"):
            continue
        quantiles = histogram_quantiles(snap)
        doc: Dict[str, Any] = {
            "count": snap["count"],
            "mean_s": snap["mean"],
            "max_s": snap["max"],
            "p50_s": quantiles[0.5],
            "p95_s": quantiles[0.95],
            "p99_s": quantiles[0.99],
        }
        if "exemplars" in snap:
            doc["exemplars"] = snap["exemplars"]
        out.setdefault(tenant, {})[kind] = doc
    return out


def result_to_json(job: Any, value: Any) -> Optional[Dict[str, Any]]:
    """The JSON form of one job's result value."""
    if value is None:
        return None
    kind = getattr(job, "kind", None)
    if kind == "containment":
        return containment_result_to_json(value)
    if kind == "sleep":
        return {"payload": value}
    return {"repr": repr(value)}
