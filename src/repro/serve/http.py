"""A minimal HTTP/1.1 layer over asyncio streams.

The serving tier deliberately runs on the stdlib alone (ROADMAP: no new
runtime dependencies), so this module implements exactly the slice of
HTTP/1.1 the :mod:`repro.serve` protocol needs and nothing more:

* request parsing — request line, headers, ``Content-Length`` bodies,
  with hard caps on line and body sizes (an oversized or malformed
  request is a :class:`ProtocolError` carrying the right status code,
  never an exception escaping the connection handler);
* response rendering — keep-alive by default, ``Content-Length`` framed;
* streaming responses — a :class:`Response` may carry an async byte
  iterator instead of a body; the connection is then ``close``-framed
  (no chunked encoding needed) which is exactly what Server-Sent Events
  want.

No routing, no TLS, no chunked *request* bodies, no HTTP/2.  Callers who
need those should put a real proxy in front; this layer's job is to make
a single replica correct and debuggable.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import AsyncIterator, Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: Hard caps, kept deliberately small: the wire protocol's documents are
#: OMQ texts, not data uploads.
MAX_REQUEST_LINE = 8192
MAX_HEADERS = 100
MAX_BODY = 4 * 1024 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    415: "Unsupported Media Type",
    422: "Unprocessable Entity",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A malformed or oversized request; maps onto one 4xx response."""

    def __init__(self, status: int, code: str, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    headers: Dict[str, str]
    body: bytes

    def json(self) -> dict:
        """The body parsed as a JSON object (400 on anything else)."""
        if not self.body:
            raise ProtocolError(400, "empty_body", "expected a JSON body")
        try:
            doc = json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(
                400, "bad_json", f"request body is not valid JSON: {exc}"
            ) from None
        if not isinstance(doc, dict):
            raise ProtocolError(
                400, "bad_json", "request body must be a JSON object"
            )
        return doc

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    """One response: a framed body or a ``close``-framed byte stream."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)
    stream: Optional[AsyncIterator[bytes]] = None

    @classmethod
    def json(
        cls, doc: object, status: int = 200, **kwargs
    ) -> "Response":
        payload = (json.dumps(doc, indent=2) + "\n").encode("utf-8")
        return cls(status=status, body=payload, **kwargs)

    @classmethod
    def error(
        cls, status: int, code: str, message: str
    ) -> "Response":
        return cls.json(
            {"error": {"code": code, "message": message}}, status=status
        )


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readline()
    except (asyncio.LimitOverrunError, ValueError):
        raise ProtocolError(
            431, "line_too_long", "request line or header too long"
        ) from None
    if len(line) > MAX_REQUEST_LINE:
        raise ProtocolError(
            431, "line_too_long", "request line or header too long"
        )
    return line


async def read_request(
    reader: asyncio.StreamReader, max_body: int = MAX_BODY
) -> Optional[Request]:
    """Parse one request; ``None`` on a clean EOF before the first byte.

    Malformed input raises :class:`ProtocolError` — the connection
    handler turns it into the 4xx it names and closes the connection.
    """
    line = await _read_line(reader)
    if not line:
        return None
    try:
        method, target, version = line.decode("ascii").split()
    except (UnicodeDecodeError, ValueError):
        raise ProtocolError(
            400, "bad_request_line", f"malformed request line: {line[:64]!r}"
        ) from None
    if not version.startswith("HTTP/1."):
        raise ProtocolError(
            400, "bad_version", f"unsupported protocol version {version!r}"
        )
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADERS):
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n", b""):
            break
        try:
            name, _, value = line.decode("latin-1").partition(":")
        except UnicodeDecodeError:  # pragma: no cover - latin-1 total
            raise ProtocolError(400, "bad_header", "undecodable header")
        if not _:
            raise ProtocolError(
                400, "bad_header", f"malformed header line: {line[:64]!r}"
            )
        headers[name.strip().lower()] = value.strip()
    else:
        raise ProtocolError(431, "too_many_headers", "too many headers")
    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise ProtocolError(
                400, "bad_content_length",
                f"bad Content-Length: {length!r}",
            ) from None
        if n < 0 or n > max_body:
            raise ProtocolError(
                413, "body_too_large",
                f"body of {n} bytes exceeds the {max_body} byte cap",
            )
        try:
            body = await reader.readexactly(n)
        except asyncio.IncompleteReadError:
            raise ProtocolError(
                400, "truncated_body", "connection closed mid-body"
            ) from None
    elif headers.get("transfer-encoding"):
        raise ProtocolError(
            415, "chunked_request",
            "chunked request bodies are not supported",
        )
    parts = urlsplit(target)
    query = {k: v for k, v in parse_qsl(parts.query)}
    return Request(
        method=method.upper(),
        path=unquote(parts.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def render_head(
    response: Response, *, keep_alive: bool
) -> Tuple[bytes, bool]:
    """The status line + headers; returns (bytes, connection_stays_open)."""
    status = response.status
    reason = REASONS.get(status, "Unknown")
    streaming = response.stream is not None
    persistent = keep_alive and not streaming
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines.append(f"Content-Type: {response.content_type}")
    if streaming:
        lines.append("Connection: close")
        lines.append("Cache-Control: no-cache")
    else:
        lines.append(f"Content-Length: {len(response.body)}")
        lines.append(
            "Connection: " + ("keep-alive" if persistent else "close")
        )
    for name, value in response.headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1"), persistent


async def write_response(
    writer: asyncio.StreamWriter, response: Response, *, keep_alive: bool
) -> bool:
    """Send *response*; returns whether the connection stays open."""
    head, persistent = render_head(response, keep_alive=keep_alive)
    writer.write(head)
    if response.stream is not None:
        await writer.drain()
        async for chunk in response.stream:
            writer.write(chunk)
            await writer.drain()
        return False
    writer.write(response.body)
    await writer.drain()
    return persistent


def sse_event(event: str, doc: object) -> bytes:
    """One Server-Sent Events frame carrying a JSON payload."""
    data = json.dumps(doc)
    return f"event: {event}\ndata: {data}\n\n".encode("utf-8")
