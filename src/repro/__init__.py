"""omqlib — Containment for Rule-Based Ontology-Mediated Queries.

A reproduction of Barceló, Berger & Pieris, *Containment for Rule-Based
Ontology-Mediated Queries* (PODS 2018).  The library provides:

* a relational core: terms, atoms, schemas, instances, (U)CQs, tgds, OMQs,
  and a text parser for all of them;
* the chase (restricted and oblivious, with budgets) and the guarded chase
  forest;
* classifiers for the decidable tgd fragments: linear, guarded,
  non-recursive, sticky, full, weakly-acyclic;
* XRewrite UCQ rewriting with the paper's f_O disjunct-size bounds;
* OMQ evaluation (``Eval(C, Q)``) and containment (``Cont(O1, O2)``) with
  exact procedures for UCQ-rewritable left-hand sides and a layered bounded
  procedure for guarded ones;
* the applications of Section 7: distribution over components and UCQ
  rewritability;
* the appendix constructions: evaluation⇄containment reductions, the
  UCQ→CQ Or-gadget, tiling reductions, and the exponential witness
  families.

Quickstart::

    from repro import parse_tgds, parse_cq, Schema, OMQ, contains

    sigma = parse_tgds('''
        P(x) -> R(x, y)
        R(x, y) -> P(y)
        T(x) -> P(x)
    ''')
    schema = Schema.of(P=1, T=1)
    q1 = OMQ(schema, sigma, parse_cq("q(x) :- R(x, y), P(y)"))
    q2 = OMQ(schema, sigma, parse_cq("q(x) :- P(x)"))
    print(contains(q1, q2))   # contained via small-witness
"""

from .chase import (
    ChaseBudgetExceeded,
    ChaseResult,
    GuardedChaseForest,
    chase,
    chase_terminates,
)
from .containment import (
    ContainmentResult,
    Verdict,
    Witness,
    contains,
    contains_guarded,
    contains_via_small_witness,
    cq_contained_in,
    cq_core,
    cq_equivalent,
    critical_database,
    equivalent,
    is_contained,
    is_satisfiable,
    ucq_contained_in,
)
from .core import (
    CQ,
    OMQ,
    TGD,
    UCQ,
    Atom,
    Constant,
    Database,
    Instance,
    Null,
    Schema,
    TGDClass,
    Variable,
    atom,
    fact,
    parse_atom,
    parse_cq,
    parse_database,
    parse_tgd,
    parse_tgds,
    parse_ucq,
    tgd,
)
from .engine import (
    BatchEngine,
    ClassifyJob,
    ContainmentJob,
    JobResult,
    RewriteJob,
    clear_caches,
)
from .evaluation import EvaluationResult, certain_answer, evaluate_omq
from .explain import Derivation, Explanation, explain_answer, format_explanation
from .fragments import (
    best_class,
    classify,
    is_full,
    is_guarded,
    is_linear,
    is_non_recursive,
    is_sticky,
    is_weakly_acyclic,
    marked_variables,
)
from .optimize import MinimizationReport, minimize_query
from .rewriting import (
    RewritingBudgetExceeded,
    RewritingResult,
    witness_size_bound,
    xrewrite,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "BatchEngine",
    "CQ",
    "ChaseBudgetExceeded",
    "ChaseResult",
    "ClassifyJob",
    "Constant",
    "ContainmentJob",
    "ContainmentResult",
    "Database",
    "Derivation",
    "EvaluationResult",
    "Explanation",
    "GuardedChaseForest",
    "Instance",
    "JobResult",
    "MinimizationReport",
    "Null",
    "OMQ",
    "RewriteJob",
    "RewritingBudgetExceeded",
    "RewritingResult",
    "Schema",
    "TGD",
    "TGDClass",
    "UCQ",
    "Variable",
    "Verdict",
    "Witness",
    "atom",
    "best_class",
    "certain_answer",
    "chase",
    "chase_terminates",
    "classify",
    "clear_caches",
    "contains",
    "contains_guarded",
    "contains_via_small_witness",
    "cq_contained_in",
    "cq_core",
    "cq_equivalent",
    "critical_database",
    "equivalent",
    "evaluate_omq",
    "explain_answer",
    "format_explanation",
    "fact",
    "is_contained",
    "is_full",
    "is_guarded",
    "is_linear",
    "is_non_recursive",
    "is_satisfiable",
    "is_sticky",
    "is_weakly_acyclic",
    "marked_variables",
    "minimize_query",
    "parse_atom",
    "parse_cq",
    "parse_database",
    "parse_tgd",
    "parse_tgds",
    "parse_ucq",
    "tgd",
    "ucq_contained_in",
    "witness_size_bound",
    "xrewrite",
]
