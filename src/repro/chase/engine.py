"""The chase procedure (Section 2).

Given an instance ``I`` and a set ``Σ`` of tgds, the chase exhaustively
applies *chase steps*: whenever a tgd ``φ(x̄,ȳ) → ∃z̄ ψ(x̄,z̄)`` has a
trigger — a homomorphism mapping its body into the current instance — the
head is added with fresh nulls for z̄.  The result ``chase(I, Σ)`` is a
universal model: it embeds homomorphically into every model of ``I ∪ Σ``,
so certain answers satisfy ``cert(q, D, Σ) = q(chase(D, Σ))``.

Two flavours are provided:

* **restricted** (default) — a trigger fires only if its head is not already
  satisfied with the same frontier assignment; this is the standard chase
  whose termination for non-recursive/full sets the paper relies on.
* **oblivious** — every trigger fires exactly once regardless of
  satisfaction; simpler to reason about, never terminates earlier than the
  restricted chase.

The chase may not terminate (e.g. for linear or sticky tgds), so the engine
takes explicit budgets: ``max_steps`` bounds chase-step applications, and
``max_depth`` bounds the *level* of created nulls (the guarded-chase depth:
facts have level 0 and a null created from a trigger whose image has level
``k`` gets level ``k+1``).  Exceeding ``max_steps`` raises
:class:`ChaseBudgetExceeded` unless ``partial=True``; reaching ``max_depth``
silently truncates (the standard device for sound bounded evaluation of
guarded OMQs, cf. Section 5's discussion of the infinite guarded chase).

Trigger discovery comes in two strategies:

* ``strategy="delta"`` (default) — semi-naive evaluation on a
  :class:`~repro.kernel.instance.WorkingInstance`: each round only searches
  for triggers whose body image touches an atom added since the previous
  round (:func:`repro.kernel.delta_triggers`).  Because trigger levels are
  immutable and fired-trigger keys are remembered, the firing sequence —
  and hence the output instance, step count, levels, and log — is
  *identical* to the naive strategy's.
* ``strategy="naive"`` — the pre-kernel algorithm: re-enumerate every
  trigger over a freshly frozen snapshot each round and skip the
  already-fired ones.  Kept as the reference for parity tests and as the
  benchmark baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.homomorphism import find_homomorphism, homomorphisms
from ..core.instance import Instance
from ..core.terms import NullFactory, Term, Variable
from ..core.tgd import TGD
from ..kernel import (
    KERNEL_METRICS,
    WorkingInstance,
    compiled_search,
    delta_triggers,
    flush_cardinality,
)
from .. import obs

#: Buckets for the per-round new-fact-count histogram (counts, not seconds).
_ROUND_SIZE_BUCKETS = (1, 2, 5, 10, 50, 200, 1000, 5000)


class ChaseBudgetExceeded(RuntimeError):
    """The chase exhausted its step budget before reaching a fixpoint.

    Carries the partial result so callers can still use it as a sound
    under-approximation.
    """

    def __init__(self, partial: "ChaseResult") -> None:
        super().__init__(
            f"chase did not terminate within {partial.steps} steps"
        )
        self.partial = partial


@dataclass(frozen=True)
class ChaseStep:
    """One application ``I --τ,(ā,b̄)--> J`` recorded for provenance."""

    tgd_index: int
    trigger: Tuple[Tuple[Variable, Term], ...]
    added: Tuple[Atom, ...]


@dataclass
class ChaseResult:
    """The outcome of a chase run."""

    instance: Instance
    steps: int
    terminated: bool
    levels: Dict[Term, int] = field(default_factory=dict)
    log: List[ChaseStep] = field(default_factory=list)

    def level_of_atom(self, a: Atom) -> int:
        """The level of an atom: the max level of its arguments (0 if ground)."""
        return max((self.levels.get(t, 0) for t in a.args), default=0)


def _trigger_key(
    tgd_index: int, assignment: Dict[Term, Term], frontier: Sequence[Variable]
) -> Tuple:
    return (tgd_index, tuple(assignment[v] for v in frontier))


def _satisfies_head(instance, rule: TGD, assignment: Dict[Term, Term]) -> bool:
    """Is the head already satisfied with this frontier assignment?

    Existential variables may be re-witnessed by any term, so we search for
    an extension of the frontier part of the assignment into the instance
    (a frozen Instance or a live WorkingInstance).
    """
    frontier_fixed = {
        v: assignment[v] for v in rule.frontier() if v in assignment
    }
    return compiled_search(rule.head).find(instance, frontier_fixed) is not None


def _trigger_sort_key(h: Dict[Term, Term]) -> List[Tuple[str, str]]:
    return sorted((str(k), str(v)) for k, v in h.items())


def chase(
    instance: Instance,
    sigma: Sequence[TGD],
    *,
    policy: str = "restricted",
    max_steps: int = 100_000,
    max_depth: Optional[int] = None,
    partial: bool = False,
    null_factory: Optional[NullFactory] = None,
    strategy: str = "delta",
) -> ChaseResult:
    """Run the chase of *instance* under *sigma*.

    Parameters
    ----------
    policy:
        ``"restricted"`` or ``"oblivious"``.
    max_steps:
        Budget on chase-step applications; exceeding it raises
        :class:`ChaseBudgetExceeded` (or returns a partial result when
        ``partial=True``).
    max_depth:
        If given, triggers whose image already sits at this level do not
        fire; the result is then the chase truncated at that null depth —
        sound but possibly incomplete for certain-answer computation.
    partial:
        Return a non-terminated :class:`ChaseResult` instead of raising when
        the step budget runs out.
    strategy:
        ``"delta"`` (semi-naive trigger discovery, the default) or
        ``"naive"`` (full re-enumeration each round).  Both produce the
        same result, step for step.
    """
    if policy not in ("restricted", "oblivious"):
        raise ValueError(f"unknown chase policy: {policy}")
    if strategy not in ("delta", "naive"):
        raise ValueError(f"unknown chase strategy: {strategy}")
    runner = _chase_delta if strategy == "delta" else _chase_naive
    return runner(
        instance,
        sigma,
        policy=policy,
        max_steps=max_steps,
        max_depth=max_depth,
        partial=partial,
        nulls=null_factory or NullFactory(),
    )


def _chase_delta(
    instance: Instance,
    sigma: Sequence[TGD],
    *,
    policy: str,
    max_steps: int,
    max_depth: Optional[int],
    partial: bool,
    nulls: NullFactory,
) -> ChaseResult:
    work = WorkingInstance.from_instance(instance)
    levels: Dict[Term, int] = {t: 0 for t in instance.domain()}
    fired: Set[Tuple] = set()
    log: List[ChaseStep] = []
    steps = 0
    rules = [(i, r) for i, r in enumerate(sigma)]
    frontiers = {
        i: tuple(sorted(r.frontier(), key=lambda v: v.name)) for i, r in rules
    }
    bodies = {i: r.body for i, r in rules}
    existentials = {
        i: tuple(sorted(r.existential_variables(), key=lambda v: v.name))
        for i, r in rules
    }
    rounds_counter = KERNEL_METRICS.counter("kernel.chase.rounds")
    round_sizes = KERNEL_METRICS.histogram(
        "kernel.chase.round_size", buckets=_ROUND_SIZE_BUCKETS
    )

    with obs.span(
        "chase.run", strategy="delta", policy=policy, rules=len(sigma)
    ) as run_span:

        def make_result(terminated: bool) -> ChaseResult:
            run_span.set("steps", steps)
            run_span.set("terminated", terminated)
            # One counter bump per predicate per run: /metrics shows the
            # cardinality regime the join planner saw.
            flush_cardinality(work.cardinality_stats())
            return ChaseResult(work.snapshot(), steps, terminated, levels, log)

        old_mark = 0
        new_mark = work.watermark()
        first_round = True
        round_no = 0
        while first_round or new_mark > old_mark:
            rounds_counter.inc()
            round_no += 1
            round_steps = steps
            with obs.span("chase.round", n=round_no) as round_span:
                for i, rule in rules:
                    # New triggers only: homomorphisms into the round-start
                    # window that touch at least one atom added since the
                    # previous round.  Within a (round, rule) they fire in
                    # the same deterministic order the naive strategy visits
                    # them, so the whole run — nulls, steps, log — is
                    # reproduced exactly.
                    triggers = sorted(
                        delta_triggers(bodies[i], work, old_mark, new_mark),
                        key=_trigger_sort_key,
                    )
                    round_span.add("delta_triggers", len(triggers))
                    for h in triggers:
                        key = _trigger_key(i, h, frontiers[i])
                        if key in fired:
                            continue
                        trigger_level = max(
                            (
                                levels.get(h[v], 0)
                                for v in rule.body_variables()
                            ),
                            default=0,
                        )
                        if max_depth is not None and trigger_level >= max_depth:
                            # Levels are immutable, so this trigger stays
                            # skipped forever; the delta discovery simply
                            # never revisits it.
                            continue
                        if policy == "restricted" and _satisfies_head(
                            work, rule, h
                        ):
                            fired.add(key)
                            continue
                        if steps >= max_steps:
                            result = make_result(False)
                            if partial:
                                return result
                            raise ChaseBudgetExceeded(result)
                        assignment = dict(h)
                        for z in existentials[i]:
                            fresh = nulls.fresh()
                            assignment[z] = fresh
                            levels[fresh] = trigger_level + 1
                        added: List[Atom] = []
                        for head_atom in rule.head:
                            new_atom = head_atom.substitute(assignment)
                            for t in new_atom.args:
                                levels.setdefault(t, 0)
                            if work.add(new_atom):
                                added.append(new_atom)
                        fired.add(key)
                        steps += 1
                        log.append(
                            ChaseStep(
                                i,
                                tuple(
                                    sorted(
                                        h.items(), key=lambda kv: str(kv[0])
                                    )
                                ),
                                tuple(added),
                            )
                        )
                new_facts = work.watermark() - new_mark
                round_sizes.observe(new_facts)
                round_span.add("fired", steps - round_steps)
                round_span.add("new_facts", new_facts)
            first_round = False
            old_mark, new_mark = new_mark, work.watermark()
        return make_result(True)


def _chase_naive(
    instance: Instance,
    sigma: Sequence[TGD],
    *,
    policy: str,
    max_steps: int,
    max_depth: Optional[int],
    partial: bool,
    nulls: NullFactory,
) -> ChaseResult:
    """The pre-kernel chase, verbatim: re-enumerate triggers every round."""
    atoms: Set[Atom] = set(instance.atoms)
    levels: Dict[Term, int] = {t: 0 for t in instance.domain()}
    fired: Set[Tuple] = set()
    log: List[ChaseStep] = []
    steps = 0
    rules = [(i, r) for i, r in enumerate(sigma)]
    frontiers = {
        i: tuple(sorted(r.frontier(), key=lambda v: v.name)) for i, r in rules
    }

    run_span = obs.span(
        "chase.run", strategy="naive", policy=policy, rules=len(sigma)
    )

    def make_result(terminated: bool) -> ChaseResult:
        run_span.set("steps", steps)
        run_span.set("terminated", terminated)
        return ChaseResult(Instance(frozenset(atoms)), steps, terminated, levels, log)

    changed = True
    round_no = 0
    with run_span:
        while changed:
            changed = False
            round_no += 1
            round_facts = len(atoms)
            round_steps = steps
            current = Instance(frozenset(atoms))
            with obs.span("chase.round", n=round_no) as round_span:
                for i, rule in rules:
                    # Enumerate triggers over the *round-start* snapshot; new
                    # atoms become visible next round, which keeps the run
                    # fair (FIFO by rounds) and deterministic.
                    for h in sorted(
                        homomorphisms(rule.body, current),
                        key=_trigger_sort_key,
                    ):
                        key = _trigger_key(i, h, frontiers[i])
                        if key in fired:
                            continue
                        trigger_level = max(
                            (
                                levels.get(h[v], 0)
                                for v in rule.body_variables()
                            ),
                            default=0,
                        )
                        if max_depth is not None and trigger_level >= max_depth:
                            continue
                        live = Instance(frozenset(atoms))
                        if policy == "restricted" and _satisfies_head(
                            live, rule, h
                        ):
                            fired.add(key)
                            continue
                        if steps >= max_steps:
                            result = make_result(False)
                            if partial:
                                return result
                            raise ChaseBudgetExceeded(result)
                        assignment = dict(h)
                        for z in sorted(
                            rule.existential_variables(), key=lambda v: v.name
                        ):
                            fresh = nulls.fresh()
                            assignment[z] = fresh
                            levels[fresh] = trigger_level + 1
                        added: List[Atom] = []
                        for head_atom in rule.head:
                            new_atom = head_atom.substitute(assignment)
                            for t in new_atom.args:
                                levels.setdefault(t, 0)
                            if new_atom not in atoms:
                                atoms.add(new_atom)
                                added.append(new_atom)
                        fired.add(key)
                        steps += 1
                        changed = True
                        log.append(
                            ChaseStep(
                                i,
                                tuple(
                                    sorted(
                                        h.items(), key=lambda kv: str(kv[0])
                                    )
                                ),
                                tuple(added),
                            )
                        )
                round_span.add("fired", steps - round_steps)
                round_span.add("new_facts", len(atoms) - round_facts)
        return make_result(True)


def chase_terminates(
    instance: Instance,
    sigma: Sequence[TGD],
    *,
    max_steps: int = 100_000,
    policy: str = "restricted",
) -> bool:
    """True iff the chase reaches a fixpoint within the step budget."""
    try:
        result = chase(
            instance, sigma, policy=policy, max_steps=max_steps, partial=False
        )
    except ChaseBudgetExceeded:
        return False
    return result.terminated


def certain_answers_via_chase(
    query,
    database: Instance,
    sigma: Sequence[TGD],
    *,
    max_steps: int = 100_000,
    max_depth: Optional[int] = None,
    partial: bool = False,
):
    """``cert(q, D, Σ) = q(chase(D, Σ))`` for a CQ or UCQ *query*.

    Exact when the chase terminates; a sound under-approximation when
    truncated by ``max_depth`` or ``partial``.
    """
    result = chase(
        database,
        sigma,
        max_steps=max_steps,
        max_depth=max_depth,
        partial=partial,
    )
    return query.evaluate(result.instance)
