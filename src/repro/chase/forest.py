"""The guarded chase forest (appendix, "Proofs of Section 5").

For a database ``D`` and a set ``Σ`` of *guarded* tgds, the guarded chase
forest has one root node per fact of ``D``; whenever an atom ``β`` results
from a one-step application of a tgd ``τ`` in which atom ``α`` is the image
of the guard, the node of ``β`` becomes a child of the node of ``α``.  The
forest makes the tree-likeness of the guarded chase explicit, which is what
powers the tree-witness property (Proposition 21).

This implementation replays a chase log and attaches provenance.  It works
for any single-head tgds; for guarded sets the guard edge is the designated
parent, for non-guarded sets we fall back to the first body atom, which
still yields a useful provenance DAG (documented, not paper-exact for the
non-guarded case).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.tgd import TGD
from ..fragments.guarded import guard_of
from .engine import ChaseResult, chase


@dataclass
class ForestNode:
    """A node of the guarded chase forest."""

    atom: Atom
    depth: int
    parent: Optional["ForestNode"] = None
    rule: Optional[TGD] = None
    children: List["ForestNode"] = field(default_factory=list)


@dataclass
class GuardedChaseForest:
    """The guarded chase forest of a database under a set of tgds."""

    roots: List[ForestNode]
    nodes_by_atom: Dict[Atom, ForestNode]
    result: ChaseResult

    @classmethod
    def build(
        cls,
        database: Instance,
        sigma: Sequence[TGD],
        *,
        max_steps: int = 50_000,
        max_depth: Optional[int] = None,
        partial: bool = False,
    ) -> "GuardedChaseForest":
        """Chase *database* under *sigma* and assemble the forest."""
        result = chase(
            database,
            sigma,
            max_steps=max_steps,
            max_depth=max_depth,
            partial=partial,
        )
        nodes: Dict[Atom, ForestNode] = {}
        roots: List[ForestNode] = []
        for a in sorted(database.atoms, key=str):
            node = ForestNode(a, depth=0)
            nodes[a] = node
            roots.append(node)
        for step in result.log:
            rule = sigma[step.tgd_index]
            assignment = dict(step.trigger)
            guard_atom = guard_of(rule)
            anchor = guard_atom if guard_atom is not None else (
                rule.body[0] if rule.body else None
            )
            parent: Optional[ForestNode] = None
            if anchor is not None:
                parent = nodes.get(anchor.substitute(assignment))
            for new_atom in step.added:
                if new_atom in nodes:
                    continue
                depth = parent.depth + 1 if parent else 0
                node = ForestNode(new_atom, depth, parent, rule)
                nodes[new_atom] = node
                if parent is not None:
                    parent.children.append(node)
                else:
                    roots.append(node)
        return cls(roots, nodes, result)

    def depth_of(self, a: Atom) -> int:
        """The forest depth of an atom (0 for database facts)."""
        return self.nodes_by_atom[a].depth

    def max_depth(self) -> int:
        """The maximal node depth in the forest."""
        return max((n.depth for n in self.nodes_by_atom.values()), default=0)

    def subtree_atoms(self, root_atom: Atom) -> Set[Atom]:
        """All atoms in the subtree rooted at *root_atom* (inclusive)."""
        start = self.nodes_by_atom[root_atom]
        out: Set[Atom] = set()
        stack = [start]
        while stack:
            node = stack.pop()
            out.add(node.atom)
            stack.extend(node.children)
        return out

    def atoms_up_to_depth(self, depth: int) -> Instance:
        """The sub-instance of the chase at forest depth ≤ *depth*."""
        return Instance.of(
            n.atom for n in self.nodes_by_atom.values() if n.depth <= depth
        )
