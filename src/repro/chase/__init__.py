"""The chase procedure and the guarded chase forest."""

from .engine import (
    ChaseBudgetExceeded,
    ChaseResult,
    ChaseStep,
    certain_answers_via_chase,
    chase,
    chase_terminates,
)
from .forest import ForestNode, GuardedChaseForest

__all__ = [
    "ChaseBudgetExceeded",
    "ChaseResult",
    "ChaseStep",
    "ForestNode",
    "GuardedChaseForest",
    "certain_answers_via_chase",
    "chase",
    "chase_terminates",
]
