"""Deciding UCQ rewritability of an OMQ (Section 7.2, Theorem 29).

Linear, non-recursive, and sticky OMQs are always UCQ rewritable
(Section 4); guarded ones may or may not be.  The paper decides
``UCQRew(G₂, CQ)`` in 2ExpTime by reducing a boundedness property over
C-trees (Proposition 30) to the *infinity* problem for a 2WAPA
(Proposition 31).

Per the DESIGN.md substitution, this module layers:

1. **syntactic fast path** — ontologies in a UCQ-rewritable class are
   rewritable, full stop;
2. **constructive attempt** — run XRewrite with a budget; convergence
   yields the rewriting itself (a constructive YES);
3. **bounded growth probe** — in the spirit of Proposition 30, evaluate
   the OMQ over its own expanding "chase-unfolding" databases: if new
   witness databases of strictly growing size keep being required (the
   partial rewriting keeps producing ever-larger disjuncts), report
   probably-not-rewritable (None with evidence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.omq import OMQ, TGDClass, UCQ_REWRITABLE_CLASSES
from ..core.queries import UCQ
from ..evaluation import cached_rewriting
from ..fragments.classify import best_class


@dataclass(frozen=True)
class RewritabilityResult:
    """Verdict for UCQRew, optionally carrying the rewriting."""

    rewritable: Optional[bool]  # None = undecided within the budget
    reason: str
    rewriting: Optional[UCQ] = None
    max_disjunct_sizes: tuple = ()

    def __bool__(self) -> bool:
        if self.rewritable is None:
            raise ValueError(f"rewritability undecided: {self.reason}")
        return self.rewritable


def is_ucq_rewritable(
    omq: OMQ,
    *,
    budgets: tuple = (500, 2_000, 8_000),
) -> RewritabilityResult:
    """Decide (or boundedly probe) whether the OMQ is UCQ rewritable.

    The increasing *budgets* implement the growth probe: if XRewrite keeps
    hitting larger budgets while its frontier of distinct rewritings keeps
    growing, the boundedness property of Proposition 30 is failing at every
    probed depth.
    """
    cls = best_class(omq.sigma)
    if cls in UCQ_REWRITABLE_CLASSES:
        result = cached_rewriting(omq, budgets[-1])
        return RewritabilityResult(
            True,
            f"ontology class {cls} is UCQ-rewritable (Section 4)",
            result.rewriting if result.complete else None,
        )
    sizes = []
    for budget in budgets:
        result = cached_rewriting(omq, budget)
        sizes.append(result.stats.queries_generated)
        if result.complete:
            return RewritabilityResult(
                True,
                f"XRewrite converged within {budget} queries",
                result.rewriting,
                tuple(sizes),
            )
    growing = all(a < b for a, b in zip(sizes, sizes[1:]))
    reason = (
        "XRewrite diverges through growing budgets "
        f"{tuple(budgets)} → frontier sizes {tuple(sizes)}"
        if growing
        else "XRewrite did not converge within the largest budget"
    )
    return RewritabilityResult(None, reason, None, tuple(sizes))
