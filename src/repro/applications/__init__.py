"""Applications of OMQ containment (Section 7)."""

from .distribution import (
    DistributionResult,
    distributes_over_components,
    evaluate_distributed,
)
from .ucq_rewritability import RewritabilityResult, is_ucq_rewritable

__all__ = [
    "DistributionResult",
    "RewritabilityResult",
    "distributes_over_components",
    "evaluate_distributed",
    "is_ucq_rewritable",
]
