"""Distribution over components (Section 7.1, Proposition 27, Theorem 28).

An OMQ ``Q = (S, Σ, q)`` *distributes over components* if
``Q(D) = Q(D₁) ∪ ... ∪ Q(Dₙ)`` for the maximally connected components
``Dᵢ`` of every S-database ``D`` — i.e., Q can be evaluated in a
distributed, coordination-free manner.

Proposition 27 characterizes distribution for (G, CQ):

    Q distributes over components  ⟺  Q is unsatisfiable, or some
    connected component q̂ of q satisfies (S, Σ, q̂) ⊆ Q.

Deciding it therefore reduces to satisfiability plus one containment check
per query component, which is how :func:`distributes_over_components`
proceeds — Theorem 28's 2ExpTime bound comes from the guarded containment
procedure behind those checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..containment.dispatch import contains
from ..containment.guarded import is_satisfiable
from ..containment.result import ContainmentResult, Verdict
from ..core.instance import Instance
from ..core.omq import OMQ
from ..evaluation import evaluate_omq


@dataclass(frozen=True)
class DistributionResult:
    """Verdict for the Dist(C, CQ) problem."""

    distributes: Optional[bool]  # None = undecided by the bounded layers
    reason: str
    witness_component: Optional[str] = None

    def __bool__(self) -> bool:
        if self.distributes is None:
            raise ValueError(f"distribution undecided: {self.reason}")
        return self.distributes


def evaluate_distributed(omq: OMQ, database: Instance, **eval_kwargs):
    """``Q(D₁) ∪ ... ∪ Q(Dₙ)``: evaluate per component and union.

    The coordination-free evaluation strategy; agrees with ``Q(D)`` exactly
    when the OMQ distributes over components.
    """
    answers = set()
    for component in database.components():
        answers |= evaluate_omq(omq, component, **eval_kwargs).answers
    return answers


def distributes_over_components(omq: OMQ, **containment_kwargs) -> DistributionResult:
    """Decide Dist for a CQ-based OMQ via Proposition 27."""
    query = omq.as_cq()
    if any(a.arity == 0 for a in query.body):
        raise ValueError(
            "distribution over components is defined for queries without "
            "0-ary atoms (footnote 5 of the paper)"
        )
    satisfiable = is_satisfiable(omq)
    if satisfiable is False:
        return DistributionResult(True, "Q is unsatisfiable")
    components = query.components()
    if len(components) <= 1:
        # A connected query trivially satisfies condition 2 with q̂ = q.
        return DistributionResult(
            True, "q is connected (q̂ = q works)", witness_component=str(query)
        )
    undecided: List[str] = []
    for component in components:
        # Containment requires matching arities: (S, Σ, q̂) ⊆ Q only makes
        # sense when q̂ keeps the full head; components with fewer head
        # variables cannot witness distribution for non-Boolean queries.
        if component.arity != query.arity:
            continue
        candidate = OMQ(
            omq.data_schema, omq.sigma, component, name=f"{omq.name}_comp"
        )
        result = contains(candidate, omq, **containment_kwargs)
        if result.verdict is Verdict.CONTAINED:
            return DistributionResult(
                True,
                "a component of q is contained in Q (Prop. 27(2))",
                witness_component=str(component),
            )
        if result.verdict is Verdict.UNKNOWN:
            undecided.append(str(component))
    if undecided:
        return DistributionResult(
            None,
            f"containment undecided for component(s): {', '.join(undecided)}",
        )
    if satisfiable is None:
        return DistributionResult(None, "satisfiability undecided")
    return DistributionResult(
        False, "no component of q is contained in Q and Q is satisfiable"
    )
