"""Parameterized ontology families for the benchmark harness.

Each generator produces a family indexed by a size parameter, designed so
that the parameter drives exactly the complexity source Table 1 attributes
to that fragment:

* linear — inclusion-dependency chains (witnesses stay polynomial);
* non-recursive — layered AND-ontologies whose rewriting doubles per layer
  (exponential in the number of predicates, Proposition 14);
* sticky — arity-parameterized propagation rules (exponential only in
  arity, Proposition 17);
* guarded — reachability-style rules (not UCQ-rewritable at all).
"""

from __future__ import annotations

from typing import List

from ..core.atoms import Atom
from ..core.omq import OMQ
from ..core.queries import CQ
from ..core.schema import Schema
from ..core.terms import Variable
from ..core.tgd import TGD


def _v(name: str) -> Variable:
    return Variable(name)


def linear_chain(length: int) -> OMQ:
    """Inclusion chain ``R_0 ⊑ R_1 ⊑ ... ⊑ R_length`` with query R_length.

    The data schema is {R_0/2}; each hop is a linear tgd that also rotates
    the pair, so rewritings stay single-atom but the chain must be walked.
    """
    x, y = _v("x"), _v("y")
    rules: List[TGD] = []
    for i in range(length):
        rules.append(
            TGD(
                (Atom(f"R_{i}", (x, y)),),
                (Atom(f"R_{i+1}", (y, x)),),
                f"hop_{i}",
            )
        )
    query = CQ((x,), (Atom(f"R_{length}", (x, y)),), "q")
    return OMQ(Schema.of(R_0=2), tuple(rules), query, f"linear_chain_{length}")


def linear_witness_family(query_size: int) -> OMQ:
    """Linear OMQ whose rewriting disjuncts track the query size (Prop 12).

    Query: a path of ``query_size`` P-atoms; ontology: P is derivable from
    the data relation E in one linear hop.
    """
    rules = [
        TGD((Atom("E", (_v("x"), _v("y"))),), (Atom("P", (_v("x"), _v("y"))),), "load")
    ]
    vars_ = [_v(f"v{i}") for i in range(query_size + 1)]
    body = tuple(
        Atom("P", (vars_[i], vars_[i + 1])) for i in range(query_size)
    )
    query = CQ((), body, "q")
    return OMQ(Schema.of(E=2), tuple(rules), query, f"linear_path_{query_size}")


def non_recursive_doubling(layers: int) -> OMQ:
    """A complete binary AND-tree of non-recursive rules.

    Every internal node predicate is derived from two *distinct* children
    (``N(x) ← N0(x) ∧ N1(x)``), with 2^layers distinct data-predicate
    leaves, so the UCQ rewriting of the root has an irreducible disjunct of
    size ``2^layers`` — rewriting size doubles per layer (Proposition 14's
    exponential behaviour; the family whose *semantic* witness is
    exponential in |sch(Σ)| is :func:`repro.reductions.prop18_family`).
    """
    x = _v("x")
    rules: List[TGD] = []
    leaves = []
    for depth in range(layers):
        for code in range(2**depth):
            node = f"N_{depth}_{code}"
            left = f"N_{depth+1}_{2*code}"
            right = f"N_{depth+1}_{2*code+1}"
            rules.append(
                TGD(
                    (Atom(left, (x,)), Atom(right, (x,))),
                    (Atom(node, (x,)),),
                    f"and_{depth}_{code}",
                )
            )
    leaves = [f"N_{layers}_{code}" for code in range(2**layers)]
    query = CQ((x,), (Atom("N_0_0", (x,)),), "q")
    return OMQ(
        Schema({leaf: 1 for leaf in leaves}),
        tuple(rules),
        query,
        f"nr_doubling_{layers}",
    )


def sticky_arity_family(arity: int) -> OMQ:
    """Sticky ontology whose data arity drives the witness bound (Prop 17).

    A lossless join rule over two arity-``arity`` data relations.
    """
    xs = [_v(f"x{i}") for i in range(arity)]
    ys = [_v(f"y{i}") for i in range(arity - 1)]
    rules = [
        TGD(
            (
                Atom("R", tuple(xs)),
                Atom("P", (xs[-1],) + tuple(ys)),
            ),
            (Atom("J", tuple(xs) + tuple(ys)),),
            "join",
        )
    ]
    query = CQ((), (Atom("J", tuple(xs) + tuple(ys)),), "q")
    return OMQ(
        Schema.of(R=arity, P=arity), tuple(rules), query, f"sticky_ar{arity}"
    )


def sticky_recursive_family(width: int = 1) -> OMQ:
    """A *recursive* sticky family (not linear, guarded, or non-recursive).

    ``A(x,y) ∧ B_i(y,z) → C_i(x,y,z)`` and ``C_i(x,y,z) → A(y,x)``: the
    join variable y propagates to every inferred atom (sticky), the A/C
    recursion defeats non-recursiveness, and no body atom guards both
    rules.  XRewrite still terminates on it thanks to query elimination.
    """
    x, y, z = _v("x"), _v("y"), _v("z")
    rules: List[TGD] = []
    schema = {"A": 2}
    for i in range(width):
        schema[f"B_{i}"] = 2
        rules.append(
            TGD(
                (Atom("A", (x, y)), Atom(f"B_{i}", (y, z))),
                (Atom(f"C_{i}", (x, y, z)),),
                f"join_{i}",
            )
        )
        rules.append(
            TGD((Atom(f"C_{i}", (x, y, z)),), (Atom("A", (y, x)),), f"flip_{i}")
        )
    query = CQ((x,), (Atom("A", (x, y)),), "q")
    return OMQ(Schema(schema), tuple(rules), query, f"sticky_rec_{width}")


def guarded_reachability(marked: int = 1) -> OMQ:
    """Guarded reachability: ``E(x,y) ∧ S(x) → S(y)`` (not UCQ rewritable)."""
    x, y = _v("x"), _v("y")
    rules = [
        TGD((Atom("E", (x, y)), Atom("S", (x,))), (Atom("S", (y,)),), "reach")
    ]
    query = CQ((x,), (Atom("S", (x,)),), "q")
    return OMQ(Schema.of(E=2, S=1), tuple(rules), query, "guarded_reach")


def guarded_acyclic(depth: int) -> OMQ:
    """A guarded but acyclic family (rewritable; exercises the exact path)."""
    x, y = _v("x"), _v("y")
    rules: List[TGD] = []
    for i in range(depth):
        rules.append(
            TGD(
                (Atom(f"E_{i}", (x, y)), Atom(f"M_{i}", (x,))),
                (Atom(f"M_{i+1}", (y,)),),
                f"step_{i}",
            )
        )
    schema = {f"E_{i}": 2 for i in range(depth)}
    schema["M_0"] = 1
    query = CQ((x,), (Atom(f"M_{depth}", (x,)),), "q")
    return OMQ(Schema(schema), tuple(rules), query, f"guarded_acyclic_{depth}")
