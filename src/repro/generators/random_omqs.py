"""Seeded random OMQ generators for the differential-testing harness.

Unlike :mod:`repro.generators.ontologies` (parameterized *families* whose
size parameter drives a known complexity source), this module draws
*random* OMQs inside a requested fragment, for property-based and
differential testing:

* :func:`random_omq` — one random OMQ whose ontology provably falls in
  the requested fragment (each draw is re-checked against the library's
  own classifiers, so generator and classifier cannot drift apart
  silently);
* :func:`alpha_rename` — an α-variant (fresh variable names per rule and
  per query, shuffled atom and rule order) that is semantically — and
  canonically (:func:`repro.engine.canon.hash_omq`) — equivalent to its
  input;
* :func:`random_omq_pair` — a pair ``(Q1, Q2, expected)`` over one shared
  data schema, where ``expected`` records what is known by construction:
  ``None`` (independent draws), ``"contained"`` (``Q1 ⊆ Q2`` holds
  because Q1's query adds conjuncts to Q2's over an α-equivalent
  ontology), or ``"equivalent"`` (an α-pair).

Determinism: every function takes an explicit :class:`random.Random` and
touches no other entropy source, so a fixed seed reproduces a failing
case exactly.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.atoms import Atom
from ..core.omq import OMQ
from ..core.queries import CQ
from ..core.schema import Schema
from ..core.terms import Term, Variable
from ..core.tgd import TGD
from ..fragments.guarded import is_guarded, is_linear
from ..fragments.nonrecursive import is_non_recursive
from ..fragments.sticky import is_sticky

#: Fragments :func:`random_omq` can target.  ``propositional`` draws an
#: all-0-ary data schema so the exhaustive enumeration procedure applies.
FRAGMENTS = (
    "linear",
    "non_recursive",
    "sticky",
    "guarded",
    "propositional",
)

#: Pair modes for :func:`random_omq_pair`.
PAIR_MODES = ("independent", "specialized", "alpha", "perturbed_pair")

#: Structural perturbations :func:`perturb_pair` can apply to a pair.
PERTURBATIONS = (
    "atom_reorder",
    "variable_rename",
    "redundant_atom",
    "predicate_rename",
)

_CHECKERS = {
    "linear": is_linear,
    "non_recursive": is_non_recursive,
    "sticky": is_sticky,
    "guarded": is_guarded,
}


class _Signature:
    """A shared vocabulary: data predicates S_i and derived predicates D_i."""

    def __init__(
        self, data: Dict[str, int], derived: Dict[str, int]
    ) -> None:
        self.data = data
        self.derived = derived
        self.schema = Schema.of(**data)

    def all_predicates(self) -> List[Tuple[str, int]]:
        return sorted({**self.data, **self.derived}.items())


def _random_signature(
    rng: random.Random,
    fragment: str,
    n_data: int,
    n_derived: int,
    max_arity: int,
) -> _Signature:
    if fragment == "propositional":
        data = {f"S_{i}": 0 for i in range(max(1, n_data))}
        derived = {f"D_{i}": 0 for i in range(n_derived)}
        return _Signature(data, derived)
    data = {f"S_{i}": rng.randint(1, max_arity) for i in range(max(1, n_data))}
    # Sticky rule-building pads heads with every body variable, so derived
    # predicates need headroom: fix their arity at max_arity + 1.
    if fragment == "sticky":
        derived = {f"D_{i}": max_arity + 1 for i in range(n_derived)}
    else:
        derived = {
            f"D_{i}": rng.randint(1, max_arity) for i in range(n_derived)
        }
    return _Signature(data, derived)


def _head_args(
    rng: random.Random,
    arity: int,
    body_vars: Sequence[Variable],
    fresh: "itertools.count",
) -> Tuple[Variable, ...]:
    """Head arguments: frontier variables with a chance of existentials."""
    args: List[Variable] = []
    for _ in range(arity):
        if body_vars and rng.random() < 0.8:
            args.append(rng.choice(list(body_vars)))
        else:
            args.append(Variable(f"z{next(fresh)}"))
    return tuple(args)


def _rules_linear(rng: random.Random, sig: _Signature, n_rules: int):
    """Single-body-atom rules S/D(x̄) → D(ȳ); linear by construction."""
    rules: List[TGD] = []
    fresh = itertools.count()
    preds = sig.all_predicates()
    for i in range(n_rules):
        body_pred, body_arity = rng.choice(preds)
        body_vars = tuple(
            Variable(f"x{j}") for j in range(max(body_arity, 1))
        )
        body = (Atom(body_pred, body_vars[:body_arity]),)
        head_pred = rng.choice(sorted(sig.derived))
        head = (
            Atom(
                head_pred,
                _head_args(
                    rng, sig.derived[head_pred], body_vars[:body_arity], fresh
                ),
            ),
        )
        rules.append(TGD(body, head, f"lin_{i}"))
    return rules


def _rules_guarded(rng: random.Random, sig: _Signature, n_rules: int):
    """Guard atom with distinct variables + side atoms over its variables."""
    rules: List[TGD] = []
    fresh = itertools.count()
    preds = sig.all_predicates()
    for i in range(n_rules):
        guard_pred, guard_arity = rng.choice(preds)
        guard_vars = tuple(
            Variable(f"x{j}") for j in range(max(guard_arity, 1))
        )
        body = [Atom(guard_pred, guard_vars[:guard_arity])]
        pool = list(guard_vars[:guard_arity]) or [Variable("x0")]
        if not body[0].args:
            # A 0-ary guard only guards a variable-free body.
            pool = []
        for _ in range(rng.randint(0, 2)):
            side_pred, side_arity = rng.choice(preds)
            if side_arity > 0 and not pool:
                continue
            body.append(
                Atom(
                    side_pred,
                    tuple(rng.choice(pool) for _ in range(side_arity)),
                )
            )
        head_pred = rng.choice(sorted(sig.derived))
        head = (
            Atom(
                head_pred,
                _head_args(rng, sig.derived[head_pred], pool, fresh),
            ),
        )
        rules.append(TGD(tuple(body), head, f"grd_{i}"))
    return rules


def _rules_non_recursive(rng: random.Random, sig: _Signature, n_rules: int):
    """Level-stratified rules: the body of a rule defining D_i only uses
    data predicates and derived predicates D_j with j < i."""
    rules: List[TGD] = []
    fresh = itertools.count()
    derived = sorted(sig.derived)
    for i in range(n_rules):
        level = rng.randrange(len(derived))
        head_pred = derived[level]
        allowed = sorted(sig.data.items()) + [
            (d, sig.derived[d]) for d in derived[:level]
        ]
        n_vars = rng.randint(1, 3)
        pool = [Variable(f"x{j}") for j in range(n_vars)]
        body = []
        for _ in range(rng.randint(1, 2)):
            pred, arity = rng.choice(allowed)
            body.append(
                Atom(pred, tuple(rng.choice(pool) for _ in range(arity)))
            )
        head = (
            Atom(
                head_pred,
                _head_args(
                    rng,
                    sig.derived[head_pred],
                    sorted(
                        {v for a in body for v in a.variables()},
                        key=lambda v: v.name,
                    ),
                    fresh,
                ),
            ),
        )
        rules.append(TGD(tuple(body), head, f"nr_{i}"))
    return rules


def _rules_sticky(rng: random.Random, sig: _Signature, n_rules: int):
    """Sticky sets, biased toward two shapes that are sticky by design:

    * *lossless* rules — every body variable reappears in the head, so the
      initial sticky marking is empty and the criterion holds vacuously;
    * single-atom bodies with distinct variables — a marked variable can
      then occur at most once in the body.

    The caller still re-checks :func:`~repro.fragments.sticky.is_sticky`,
    so joins introduced by the second shape can reject a draw.
    """
    rules: List[TGD] = []
    fresh = itertools.count()
    preds = sig.all_predicates()
    derived = sorted(sig.derived)
    for i in range(n_rules):
        head_pred = rng.choice(derived)
        head_arity = sig.derived[head_pred]
        if rng.random() < 0.6:
            # Lossless: 1-2 body atoms, all body variables kept in the head.
            n_vars = rng.randint(1, max(1, head_arity - 1))
            pool = [Variable(f"x{j}") for j in range(n_vars)]
            body = []
            for _ in range(rng.randint(1, 2)):
                pred, arity = rng.choice(preds)
                body.append(
                    Atom(pred, tuple(rng.choice(pool) for _ in range(arity)))
                )
            used = sorted(
                {v for a in body for v in a.variables()},
                key=lambda v: v.name,
            )
            args: List[Variable] = list(used)
            while len(args) < head_arity:
                args.append(Variable(f"z{next(fresh)}"))
            rng.shuffle(args)
            head = (Atom(head_pred, tuple(args[:head_arity])),)
        else:
            pred, arity = rng.choice(preds)
            body_vars = tuple(Variable(f"x{j}") for j in range(arity))
            body = [Atom(pred, body_vars)]
            head = (
                Atom(
                    head_pred,
                    _head_args(rng, head_arity, body_vars, fresh),
                ),
            )
        rules.append(TGD(tuple(body), head, f"stk_{i}"))
    return rules


def _rules_propositional(rng: random.Random, sig: _Signature, n_rules: int):
    """0-ary rules P ∧ Q → D (also trivially guarded and sticky)."""
    rules: List[TGD] = []
    preds = sorted({**sig.data, **sig.derived})
    derived = sorted(sig.derived)
    for i in range(n_rules):
        body = tuple(
            Atom(p, ())
            for p in rng.sample(preds, rng.randint(1, min(2, len(preds))))
        )
        head = (Atom(rng.choice(derived), ()),)
        rules.append(TGD(body, head, f"prop_{i}"))
    return rules


_RULE_BUILDERS = {
    "linear": _rules_linear,
    "guarded": _rules_guarded,
    "non_recursive": _rules_non_recursive,
    "sticky": _rules_sticky,
    "propositional": _rules_propositional,
}


def _random_query(
    rng: random.Random,
    sig: _Signature,
    n_atoms: int,
    head_arity: Optional[int] = None,
) -> CQ:
    """A safe CQ over the signature (data and derived predicates)."""
    preds = sig.all_predicates()
    if all(arity == 0 for _, arity in preds):
        body = tuple(
            Atom(p, ())
            for p, _ in rng.sample(preds, rng.randint(1, min(2, len(preds))))
        )
        return CQ((), body, "q")
    pool = [Variable(f"y{j}") for j in range(3)]
    body: List[Atom] = []
    for _ in range(max(1, n_atoms)):
        pred, arity = rng.choice(preds)
        body.append(Atom(pred, tuple(rng.choice(pool) for _ in range(arity))))
    body_vars = sorted(
        {v for a in body for v in a.variables()}, key=lambda v: v.name
    )
    if not body_vars:
        return CQ((), tuple(body), "q")
    if head_arity is None:
        head_arity = rng.randint(0, min(2, len(body_vars)))
    head = tuple(rng.choice(body_vars) for _ in range(head_arity))
    return CQ(head, tuple(body), "q")


def random_omq(
    fragment: str,
    rng: random.Random,
    *,
    n_data_predicates: int = 2,
    n_derived_predicates: int = 2,
    n_rules: int = 3,
    max_arity: int = 2,
    n_query_atoms: int = 2,
    max_attempts: int = 25,
    _signature: Optional[_Signature] = None,
    _head_arity: Optional[int] = None,
) -> OMQ:
    """One random OMQ whose ontology falls in *fragment*.

    Every draw is validated against the library's own classifier for the
    fragment (``is_linear`` / ``is_non_recursive`` / ``is_sticky`` /
    ``is_guarded``); shapes the builders cannot guarantee by construction
    (sticky joins) are simply redrawn, up to *max_attempts* times.
    """
    if fragment not in FRAGMENTS:
        raise ValueError(
            f"unknown fragment {fragment!r}; choose from {FRAGMENTS}"
        )
    sig = _signature or _random_signature(
        rng, fragment, n_data_predicates, n_derived_predicates, max_arity
    )
    builder = _RULE_BUILDERS[fragment]
    checker = _CHECKERS.get(fragment)
    for _ in range(max_attempts):
        rules = builder(rng, sig, n_rules)
        if checker is None or checker(rules):
            break
    else:  # pragma: no cover - builders converge in practice
        raise RuntimeError(
            f"could not draw a {fragment} rule set in {max_attempts} tries"
        )
    query = _random_query(rng, sig, n_query_atoms, head_arity=_head_arity)
    return OMQ(sig.schema, tuple(rules), query, name=f"rand_{fragment}")


# -- α-renaming --------------------------------------------------------------


def _rename_atoms(
    atoms: Sequence[Atom], mapping: Dict[Term, Term]
) -> Tuple[Atom, ...]:
    return tuple(a.substitute(mapping) for a in atoms)


def _fresh_mapping(
    variables: Sequence[Variable], rng: random.Random, tag: str
) -> Dict[Term, Term]:
    offset = rng.randrange(1000)
    ordered = sorted(variables, key=lambda v: v.name)
    return {
        v: Variable(f"{tag}{offset + i}") for i, v in enumerate(ordered)
    }


def alpha_rename(omq: OMQ, rng: random.Random) -> OMQ:
    """A semantically equivalent α-variant of *omq*.

    Renames every rule's variables (independently per rule — tgd variables
    are rule-scoped) and the query's variables to fresh names, and shuffles
    atom order within bodies and rule order within the ontology.  The
    result has the same canonical hash as the input, but is (almost
    always) structurally distinct, which defeats syntax-based shortcuts
    like Σ1 ⊆ Σ2 subsumption.
    """
    rules: List[TGD] = []
    for rule in omq.sigma:
        mapping = _fresh_mapping(sorted(rule.variables(), key=str), rng, "v")
        body = list(_rename_atoms(rule.body, mapping))
        head = list(_rename_atoms(rule.head, mapping))
        rng.shuffle(body)
        rng.shuffle(head)
        rules.append(TGD(tuple(body), tuple(head), rule.name))
    rng.shuffle(rules)
    q = omq.query
    qmap = _fresh_mapping(sorted(q.variables(), key=str), rng, "w")
    body = list(_rename_atoms(q.body, qmap))
    rng.shuffle(body)
    head = tuple(qmap.get(t, t) for t in q.head)
    query = CQ(head, tuple(body), q.name)
    return OMQ(omq.data_schema, tuple(rules), query, name=omq.name)


# -- structural perturbations ------------------------------------------------


@dataclass(frozen=True)
class PerturbedVariant:
    """One perturbed copy of a base pair, with what is known about it.

    ``verdict_preserved`` is a by-construction guarantee: the variant's
    containment verdict equals the base pair's.  A ``False`` value means
    *no guarantee* (the perturbation may or may not flip the verdict),
    not "guaranteed different".  ``hash_preserved`` and
    ``signature_preserved`` are *measured* per side against the base pair
    (canonical hash via :func:`repro.engine.canon.hash_omq`, predicate
    signature via :func:`repro.engine.witness_store.omq_signature`), so
    tests can select exactly the variants they need — e.g. the
    structural-replay benchmark wants verdict-preserving variants with
    both hashes changed and both signatures kept.
    """

    kind: str
    pair: Tuple[OMQ, OMQ]
    verdict_preserved: bool
    hash_preserved: Tuple[bool, bool]
    signature_preserved: Tuple[bool, bool]


def _reorder(omq: OMQ, rng: random.Random) -> OMQ:
    """Shuffle rule order and query-body atom order; names untouched."""
    rules = list(omq.sigma)
    rng.shuffle(rules)
    q = omq.query
    body = list(q.body)
    rng.shuffle(body)
    return OMQ(
        omq.data_schema,
        tuple(rules),
        CQ(q.head, tuple(body), q.name),
        name=omq.name,
    )


def _add_redundant_atom(omq: OMQ, rng: random.Random) -> OMQ:
    """Add a homomorphically redundant copy of one query-body atom.

    The copy's arguments are fresh variables, so it folds onto the
    original (fresh → original argument, everything else fixed) and the
    query is semantically unchanged — but the canonical form gains an
    atom, so the hash changes.  0-ary atoms are duplicated verbatim
    (still redundant; the canonical form may dedup them, so the hash is
    not guaranteed to move — callers read the measured flags).  The
    ontology is untouched, so fragment membership is preserved.
    """
    q = omq.query
    template = rng.choice(list(q.body))
    salt = rng.randrange(1000)
    copy = Atom(
        template.predicate,
        tuple(
            Variable(f"r{salt}_{i}") for i in range(template.arity)
        ),
    )
    return OMQ(
        omq.data_schema,
        omq.sigma,
        CQ(q.head, tuple(q.body) + (copy,), q.name),
        name=omq.name,
    )


def _rename_predicates(omq: OMQ, mapping: Dict[str, str]) -> OMQ:
    """Consistently rename predicates across schema, rules, and query."""

    def _atom(a: Atom) -> Atom:
        return Atom(mapping.get(a.predicate, a.predicate), a.args)

    schema = Schema(
        {
            mapping.get(p, p): arity
            for p, arity in omq.data_schema.relations.items()
        }
    )
    rules = tuple(
        TGD(
            tuple(_atom(a) for a in rule.body),
            tuple(_atom(a) for a in rule.head),
            rule.name,
        )
        for rule in omq.sigma
    )
    q = omq.query
    query = CQ(q.head, tuple(_atom(a) for a in q.body), q.name)
    return OMQ(schema, rules, query, name=omq.name)


def perturb_pair(
    q1: OMQ, q2: OMQ, rng: random.Random, kind: str
) -> PerturbedVariant:
    """One perturbed variant of the pair ``(q1, q2)``.

    * ``atom_reorder`` — shuffle rule/atom order on both sides
      (verdict-preserving; canonical hashes unchanged);
    * ``variable_rename`` — α-rename both sides (verdict-preserving;
      hashes unchanged — hashing is isomorphism-invariant);
    * ``redundant_atom`` — add a homomorphically redundant query atom to
      *both* sides (verdict-preserving; hashes move, signatures stay —
      the labeled input the structural replay rung exists for);
    * ``predicate_rename`` — rename one predicate on *one* side only
      (verdict-breaking in general: the sides no longer speak the same
      vocabulary, and the signature key moves with the rename).
    """
    if kind not in PERTURBATIONS:
        raise ValueError(
            f"unknown perturbation {kind!r}; choose from {PERTURBATIONS}"
        )
    from ..engine.canon import hash_omq
    from ..engine.witness_store import omq_signature

    verdict_preserved = True
    if kind == "atom_reorder":
        p1, p2 = _reorder(q1, rng), _reorder(q2, rng)
    elif kind == "variable_rename":
        p1, p2 = alpha_rename(q1, rng), alpha_rename(q2, rng)
    elif kind == "redundant_atom":
        p1, p2 = _add_redundant_atom(q1, rng), _add_redundant_atom(q2, rng)
    else:  # predicate_rename
        side = rng.choice((0, 1))
        target = (q1, q2)[side]
        pool = sorted(
            {a.predicate for a in target.query.body}
            | {
                a.predicate
                for rule in target.sigma
                for a in rule.body + rule.head
            }
        )
        old = rng.choice(pool)
        renamed = _rename_predicates(target, {old: f"{old}_rn"})
        p1, p2 = (renamed, q2) if side == 0 else (q1, renamed)
        verdict_preserved = False
    return PerturbedVariant(
        kind=kind,
        pair=(p1, p2),
        verdict_preserved=verdict_preserved,
        hash_preserved=(
            hash_omq(p1) == hash_omq(q1),
            hash_omq(p2) == hash_omq(q2),
        ),
        signature_preserved=(
            omq_signature(p1) == omq_signature(q1),
            omq_signature(p2) == omq_signature(q2),
        ),
    )


def perturbed_pair_family(
    fragment: str,
    rng: random.Random,
    kinds: Sequence[str] = PERTURBATIONS,
    **kwargs,
) -> Tuple[Tuple[OMQ, OMQ], List[PerturbedVariant]]:
    """A base pair plus one perturbed variant per requested kind.

    The base pair is an ``independent`` draw over a shared signature (so
    refutations are common); every variant perturbs the *base*, giving
    the structural-replay harness labeled non-hash-equal inputs whose
    relation to the base is known by construction.
    """
    q1, q2, _ = random_omq_pair(fragment, rng, mode="independent", **kwargs)
    return (q1, q2), [perturb_pair(q1, q2, rng, kind) for kind in kinds]


# -- pairs -------------------------------------------------------------------


def random_omq_pair(
    fragment: str,
    rng: random.Random,
    mode: str = "independent",
    **kwargs,
) -> Tuple[OMQ, OMQ, Optional[str]]:
    """A pair ``(Q1, Q2, expected)`` over one shared data schema.

    * ``independent`` — two independent draws over the same signature and
      head arity (``expected = None``: nothing is known by construction);
    * ``specialized`` — Q2 is a random draw; Q1 keeps Q2's head but adds
      random conjuncts to the query body, over an α-renamed copy of Q2's
      ontology.  Then ``Q1 ⊆ Q2`` holds semantically (``expected =
      "contained"``) while ``Σ1 ⊆ Σ2`` fails syntactically, so the
      full procedures — not the subsumption shortcut — must prove it;
    * ``alpha`` — Q2 is an α-variant of Q1 (``expected = "equivalent"``);
    * ``perturbed_pair`` — an independent base pair run through one
      random *verdict-preserving* structural perturbation (atom reorder,
      variable renaming, or a redundant atom on both sides; see
      :func:`perturb_pair`), so the pair is a structurally different
      spelling of a base draw (``expected = None``).  Use
      :func:`perturbed_pair_family` when the base pair and the
      verdict-breaking variants are needed too.
    """
    if mode not in PAIR_MODES:
        raise ValueError(f"unknown mode {mode!r}; choose from {PAIR_MODES}")
    if mode == "perturbed_pair":
        q1, q2, _ = random_omq_pair(
            fragment, rng, mode="independent", **kwargs
        )
        kind = rng.choice(
            ("atom_reorder", "variable_rename", "redundant_atom")
        )
        variant = perturb_pair(q1, q2, rng, kind)
        return variant.pair[0], variant.pair[1], None
    max_arity = kwargs.get("max_arity", 2)
    sig = _random_signature(
        rng,
        fragment,
        kwargs.get("n_data_predicates", 2),
        kwargs.get("n_derived_predicates", 2),
        max_arity,
    )
    if mode == "independent":
        head_arity = (
            0 if fragment == "propositional" else rng.randint(0, 2)
        )
        q1 = random_omq(
            fragment, rng, _signature=sig, _head_arity=head_arity, **kwargs
        )
        q2 = random_omq(
            fragment, rng, _signature=sig, _head_arity=head_arity, **kwargs
        )
        return q1, q2, None
    base = random_omq(fragment, rng, _signature=sig, **kwargs)
    if mode == "alpha":
        return base, alpha_rename(base, rng), "equivalent"
    # specialized: add conjuncts to the query, α-rename the ontology.
    extra: List[Atom] = []
    pool = sorted(base.query.variables(), key=str) or [Variable("y0")]
    pool = list(pool) + [Variable("yx")]
    preds = sig.all_predicates()
    for _ in range(rng.randint(1, 2)):
        pred, arity = rng.choice(preds)
        extra.append(
            Atom(pred, tuple(rng.choice(pool) for _ in range(arity)))
        )
    specialized_query = CQ(
        base.query.head, tuple(base.query.body) + tuple(extra), "q_spec"
    )
    renamed = alpha_rename(base, rng)
    q1 = OMQ(
        sig.schema, renamed.sigma, specialized_query, name="rand_spec"
    )
    return q1, base, "contained"
