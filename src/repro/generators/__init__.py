"""Synthetic workload generators for the benchmark harness."""

from .databases import (
    chain_database,
    disjoint_union,
    random_database,
    star_database,
)
from .ontologies import (
    guarded_acyclic,
    guarded_reachability,
    linear_chain,
    linear_witness_family,
    non_recursive_doubling,
    sticky_arity_family,
    sticky_recursive_family,
)
from .random_omqs import (
    FRAGMENTS,
    PAIR_MODES,
    alpha_rename,
    random_omq,
    random_omq_pair,
)

__all__ = [
    "FRAGMENTS",
    "PAIR_MODES",
    "alpha_rename",
    "chain_database",
    "disjoint_union",
    "guarded_acyclic",
    "guarded_reachability",
    "linear_chain",
    "linear_witness_family",
    "non_recursive_doubling",
    "random_database",
    "random_omq",
    "random_omq_pair",
    "sticky_arity_family",
    "sticky_recursive_family",
    "star_database",
]
