"""Synthetic database generators (seeded, deterministic)."""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..core.atoms import Atom
from ..core.instance import Instance
from ..core.schema import Schema
from ..core.terms import Constant


def random_database(
    schema: Schema,
    n_constants: int,
    n_atoms: int,
    seed: int = 0,
) -> Instance:
    """A random database over *schema* with the given sizes."""
    rng = random.Random(seed)
    constants = [Constant(f"c{i}") for i in range(n_constants)]
    predicates = schema.predicates()
    atoms: List[Atom] = []
    guard = 0
    while len(set(atoms)) < n_atoms and guard < 50 * n_atoms:
        guard += 1
        p = rng.choice(predicates)
        args = tuple(rng.choice(constants) for _ in range(schema.arity(p)))
        atoms.append(Atom(p, args))
    return Instance.of(atoms)


def chain_database(predicate: str, length: int, prefix: str = "n") -> Instance:
    """A path ``R(n0,n1), R(n1,n2), ...`` of the given length."""
    return Instance.of(
        Atom(predicate, (Constant(f"{prefix}{i}"), Constant(f"{prefix}{i+1}")))
        for i in range(length)
    )


def star_database(
    predicate: str, spokes: int, center: str = "hub"
) -> Instance:
    """A star ``R(hub, s_i)`` with the given number of spokes."""
    c = Constant(center)
    return Instance.of(
        Atom(predicate, (c, Constant(f"s{i}"))) for i in range(spokes)
    )


def disjoint_union(parts: Sequence[Instance], prefix: str = "p") -> Instance:
    """A database with one renamed-apart copy of each part (components)."""
    atoms: List[Atom] = []
    for i, part in enumerate(parts):
        mapping = {
            c: Constant(f"{prefix}{i}_{c.name}") for c in part.constants()
        }
        atoms.extend(part.rename(mapping).atoms)
    return Instance.of(atoms)
